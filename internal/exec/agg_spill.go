// Grace-partitioned spill for hash aggregation, in hybrid spill mode
// (mirroring the hybrid join build). When a query runs under a memory
// budget and its aggregation state outgrows it, the consumer switches
// to out-of-core mode:
//
//  1. The in-memory table's groups are partitioned by a hash of the
//     encoded group key and folded into per-partition resident tables;
//     then only the largest partitions are evicted to disk — their
//     groups serialized as "partial" rows (group key values, firstSeen
//     position, and each aggregate's serialized partial state) — until
//     the resident remainder fits the budget.
//  2. Every subsequent input row is routed by the same hash: rows
//     whose partition is still resident update its in-memory states
//     directly (no disk I/O); rows of an evicted partition append to
//     its file as "raw" rows (evaluated group and argument columns
//     plus the row's global input position) without touching a hash
//     table at all. If resident partitions outgrow the budget again,
//     the largest are evicted in turn.
//  3. On emit, resident partitions sort their groups by firstSeen and
//     become runs directly. Evicted partitions are processed one at a
//     time: partials merge by key, raw rows re-aggregate, and if a
//     partition itself outgrows the budget it re-partitions
//     recursively on the next hash nibble. The shared run merger folds
//     all runs back into exact global first-appearance order, because
//     firstSeen is the minimum input position over all of a group's
//     rows — an order-independent quantity.
//
// All partitions of one spiller share one physical spill file (file
// creation dominates spill cost on most filesystems); per-partition
// chunk-ref lists make the partitions independently readable via
// positioned reads.
//
// Rows of one group always hash to one partition chain, so grouping is
// exact; determinism of row order holds at any budget and worker
// count. The single caveat is the one parallel execution already
// carries: SUM/AVG over DOUBLE accumulate in whatever order rows are
// replayed, so float sums can differ in the last ulps from the
// in-memory run (integer, string, COUNT, MIN/MAX and all DISTINCT
// aggregates are exact).
package exec

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"vexdb/internal/plan"
	"vexdb/internal/spill"
	"vexdb/internal/vector"
)

// spillFanout is the grace-partition fan-out per recursion level (one
// hash nibble).
const spillFanout = 16

// HybridAggEnabled selects hybrid spill-mode aggregation: on overflow
// only the largest partitions are evicted to disk, and post-overflow
// rows whose partition is resident update in-memory states directly.
// False restores the pre-hybrid behavior — every post-overflow row
// routes to its partition file ("route everything") — kept for
// benchmarking the hybrid win (cmd/loadgen -exp adaptive) and for
// differential tests; results are byte-identical either way. Must not
// be toggled while queries are running.
var HybridAggEnabled = true

// maxSpillLevels caps re-partitioning depth; a partition that still
// exceeds the budget at the deepest level (pathological key skew, or
// a single group whose DISTINCT set alone exceeds the budget) is
// processed in memory — correctness over the budget, degraded
// gracefully.
const maxSpillLevels = 8

// hashKeyBytes hashes an encoded group key (FNV-1a 64); partitions at
// recursion level L use nibble L, so a partition's keys re-split on
// fresh bits at every level.
func hashKeyBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

func partitionOf(h uint64, level int) int {
	return int((h >> (4 * uint(level))) & (spillFanout - 1))
}

// ------------------------------------------------------- row appender

// rowAppender buffers rows destined for one partition until a chunk's
// worth accumulated.
type rowAppender struct {
	cols []*vector.Vector
}

func newRowAppender(types []vector.Type) *rowAppender {
	a := &rowAppender{cols: make([]*vector.Vector, len(types))}
	for i, t := range types {
		a.cols[i] = vector.New(t, 0)
	}
	return a
}

func (a *rowAppender) rows() int {
	if a == nil || len(a.cols) == 0 {
		return 0
	}
	return a.cols[0].Len()
}

func (a *rowAppender) reset() {
	for i, c := range a.cols {
		a.cols[i] = vector.New(c.Type(), 0)
	}
}

// ------------------------------------------------------- agg spiller

// aggLayout describes the spilled row formats of one aggregation:
// raw rows are [group cols..., arg cols (non-nil args only)..., pos];
// partial rows are [group cols..., firstSeen, one state blob per agg].
type aggLayout struct {
	spec       *plan.Aggregate
	groupTypes []vector.Type
	argTypes   []vector.Type // one per agg with a non-nil Arg
	argIdx     []int         // agg i -> index into argTypes, or -1
}

// newAggLayout derives the spilled layouts from evaluated vectors
// (runtime types, which can differ from static expression types for
// untyped NULLs).
func newAggLayout(spec *plan.Aggregate, groupVecs, argVecs []*vector.Vector) *aggLayout {
	l := &aggLayout{spec: spec, argIdx: make([]int, len(spec.Aggs))}
	l.groupTypes = make([]vector.Type, len(groupVecs))
	for i, v := range groupVecs {
		l.groupTypes[i] = v.Type()
	}
	for i := range spec.Aggs {
		l.argIdx[i] = -1
		if argVecs[i] != nil {
			l.argIdx[i] = len(l.argTypes)
			l.argTypes = append(l.argTypes, argVecs[i].Type())
		}
	}
	return l
}

func (l *aggLayout) rawTypes() []vector.Type {
	out := append([]vector.Type{}, l.groupTypes...)
	out = append(out, l.argTypes...)
	return append(out, vector.Int64)
}

func (l *aggLayout) partialTypes() []vector.Type {
	out := append([]vector.Type{}, l.groupTypes...)
	out = append(out, vector.Int64)
	for range l.spec.Aggs {
		out = append(out, vector.Blob)
	}
	return out
}

// aggSpiller fans aggregation overflow out to spillFanout partitions
// at one recursion level. One spiller (and one spill file) is shared
// by every consumer of an aggregation: parallel workers route into
// the same partitions under per-partition locks.
type aggSpiller struct {
	ctx    *Context
	layout *aggLayout
	level  int
	hybrid bool // resident partitions allowed (HybridAggEnabled at creation)

	fileMu sync.Mutex
	file   *spill.File

	// evictMu serializes eviction decisions: concurrent routers may
	// keep folding rows into partitions not being evicted, but only one
	// spillUntilFits pass picks victims at a time. Lock order is
	// evictMu → parts[p].mu → fileMu.
	evictMu sync.Mutex

	parts [spillFanout]aggSpillPart
}

type aggSpillPart struct {
	mu          sync.Mutex
	table       *aggTable // resident in-memory states; nil once spilled
	spilled     bool      // evicted: rows for this partition go to disk
	raw         *rowAppender
	partial     *rowAppender
	rawRefs     []spill.ChunkRef
	partialRefs []spill.ChunkRef
}

func newAggSpiller(ctx *Context, layout *aggLayout, level int) *aggSpiller {
	return &aggSpiller{ctx: ctx, layout: layout, level: level, hybrid: HybridAggEnabled}
}

// writeBuf flushes one partition's buffered rows into the shared file,
// recording the chunk ref. The partition's lock must be held.
func (s *aggSpiller) writeBuf(a *rowAppender, refs *[]spill.ChunkRef) error {
	if a.rows() == 0 {
		return nil
	}
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	if s.file == nil {
		f, err := s.ctx.spillManager().Create(fmt.Sprintf("agg-l%d", s.level))
		if err != nil {
			return err
		}
		s.file = f
	}
	ref, err := s.file.WriteChunkRef(a.cols)
	if err != nil {
		return err
	}
	*refs = append(*refs, ref)
	a.reset()
	return nil
}

// partitionRows computes each row's partition and groups row indexes
// by partition, so appends take one lock per (chunk, partition)
// instead of one per row.
func (s *aggSpiller) partitionRows(groupVecs []*vector.Vector, n int) [spillFanout][]int {
	var sel [spillFanout][]int
	var keyBuf []byte
	for r := 0; r < n; r++ {
		keyBuf = keyBuf[:0]
		for _, gv := range groupVecs {
			keyBuf = appendRowKey(keyBuf, gv, r)
		}
		p := partitionOf(hashKeyBytes(keyBuf), s.level)
		sel[p] = append(sel[p], r)
	}
	return sel
}

// routeVecs routes n evaluated rows to their partitions: rows of a
// resident partition fold into its in-memory table directly, rows of
// an evicted partition append to its raw chunk list. posOf supplies
// each row's global input position. Safe for concurrent use by
// multiple workers; finishes by re-checking the resident footprint
// against the budget and evicting if needed.
func (s *aggSpiller) routeVecs(groupVecs, argVecs []*vector.Vector, n int, posOf func(r int) int64) error {
	sel := s.partitionRows(groupVecs, n)
	for p := range sel {
		if len(sel[p]) == 0 {
			continue
		}
		pt := &s.parts[p]
		pt.mu.Lock()
		err := func() error {
			if s.hybrid && !pt.spilled {
				if pt.table == nil {
					pt.table = newAggTable(s.layout.spec)
				}
				prev := pt.table.bytes
				if err := pt.table.consumeRowsSel(groupVecs, argVecs, sel[p], posOf); err != nil {
					return err
				}
				s.ctx.memGrow(pt.table.bytes - prev)
				return nil
			}
			if pt.raw == nil {
				pt.raw = newRowAppender(s.layout.rawTypes())
			}
			a := pt.raw
			for _, r := range sel[p] {
				c := 0
				for _, gv := range groupVecs {
					a.cols[c].AppendRowFrom(gv, r)
					c++
				}
				for i := range s.layout.spec.Aggs {
					if s.layout.argIdx[i] < 0 {
						continue
					}
					a.cols[len(groupVecs)+s.layout.argIdx[i]].AppendRowFrom(argVecs[i], r)
				}
				a.cols[len(a.cols)-1].AppendValue(vector.NewInt64(posOf(r)))
			}
			if a.rows() >= vector.DefaultChunkSize {
				return s.writeBuf(a, &pt.rawRefs)
			}
			return nil
		}()
		pt.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return s.spillUntilFits()
}

// appendPartialRows serializes the selected groups of t as partial
// rows into a (the dumpTable/evict serialization shared by the disk
// and resident absorption paths). stateBuf is the caller's reusable
// encode buffer.
func (s *aggSpiller) appendPartialRows(a *rowAppender, t *aggTable, gis []int, stateBuf *[]byte) {
	ng := len(s.layout.groupTypes)
	for _, gi := range gis {
		g := &t.groups[gi]
		for i, kv := range g.keyVals {
			appendCast(a.cols[i], kv, s.layout.groupTypes[i])
		}
		a.cols[ng].AppendValue(vector.NewInt64(g.firstSeen))
		for i := range g.aggs {
			*stateBuf = encodeAggState((*stateBuf)[:0], &g.aggs[i])
			a.cols[ng+1+i].AppendValue(vector.NewBlob(append([]byte(nil), *stateBuf...)))
		}
	}
}

// dumpTable absorbs every group of t into the spiller and accounts the
// table's memory as released (the caller drops the table): groups of
// resident partitions fold into the per-partition in-memory tables via
// the partial-row codec — the same path spilled partials replay
// through, so merge semantics cannot diverge between disk and memory —
// and groups of evicted partitions are written as partial rows. Safe
// for concurrent use; ends by evicting the largest resident partitions
// until the remainder fits the budget.
func (s *aggSpiller) dumpTable(t *aggTable) error {
	ng := len(s.layout.groupTypes)
	var sel [spillFanout][]int
	var keyBuf []byte
	for gi := range t.groups {
		keyBuf = keyBuf[:0]
		for _, kv := range t.groups[gi].keyVals {
			keyBuf = appendValueKey(keyBuf, kv)
		}
		p := partitionOf(hashKeyBytes(keyBuf), s.level)
		sel[p] = append(sel[p], gi)
	}
	var stateBuf []byte
	for p := range sel {
		if len(sel[p]) == 0 {
			continue
		}
		pt := &s.parts[p]
		pt.mu.Lock()
		err := func() error {
			if s.hybrid && !pt.spilled {
				a := newRowAppender(s.layout.partialTypes())
				s.appendPartialRows(a, t, sel[p], &stateBuf)
				if pt.table == nil {
					pt.table = newAggTable(s.layout.spec)
				}
				prev := pt.table.bytes
				if err := pt.table.mergePartialChunk(a.cols, ng); err != nil {
					return err
				}
				s.ctx.memGrow(pt.table.bytes - prev)
				return nil
			}
			if pt.partial == nil {
				pt.partial = newRowAppender(s.layout.partialTypes())
			}
			s.appendPartialRows(pt.partial, t, sel[p], &stateBuf)
			if pt.partial.rows() >= vector.DefaultChunkSize {
				return s.writeBuf(pt.partial, &pt.partialRefs)
			}
			return nil
		}()
		pt.mu.Unlock()
		if err != nil {
			return err
		}
	}
	s.ctx.memShrink(t.bytes)
	return s.spillUntilFits()
}

// spillUntilFits evicts the largest resident partitions to disk until
// the spiller's resident footprint passes the budget check (which
// itself first tries to grow the governor lease), mirroring the hybrid
// join build. Ties go to the higher partition index so the choice is
// deterministic for a given set of sizes.
func (s *aggSpiller) spillUntilFits() error {
	if !s.hybrid {
		return nil
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	for {
		var resident int64
		best, bestBytes := -1, int64(0)
		for p := range s.parts {
			pt := &s.parts[p]
			pt.mu.Lock()
			if pt.table != nil {
				b := pt.table.bytes
				resident += b
				if b >= bestBytes {
					best, bestBytes = p, b
				}
			}
			pt.mu.Unlock()
		}
		if best < 0 || bestBytes == 0 || !s.ctx.shouldSpill(resident) {
			return nil
		}
		if err := s.evictPart(best); err != nil {
			return err
		}
	}
}

// evictPart serializes one resident partition's groups as partial rows
// and marks the partition spilled; subsequent rows for it go to disk.
// No re-partitioning is needed: every group already belongs here.
func (s *aggSpiller) evictPart(p int) error {
	pt := &s.parts[p]
	pt.mu.Lock()
	defer pt.mu.Unlock()
	t := pt.table
	if t == nil {
		return nil
	}
	if pt.partial == nil {
		pt.partial = newRowAppender(s.layout.partialTypes())
	}
	gis := make([]int, len(t.groups))
	for i := range gis {
		gis[i] = i
	}
	var stateBuf []byte
	s.appendPartialRows(pt.partial, t, gis, &stateBuf)
	if pt.partial.rows() >= vector.DefaultChunkSize {
		if err := s.writeBuf(pt.partial, &pt.partialRefs); err != nil {
			return err
		}
	}
	s.ctx.memShrink(t.bytes)
	pt.table = nil
	pt.spilled = true
	return nil
}

// reroutePartialChunk forwards spilled partial rows to the next
// recursion level's partitions: resident partitions merge them into
// their in-memory tables, evicted ones buffer them for disk.
func (s *aggSpiller) reroutePartialChunk(cols []*vector.Vector, ng int) error {
	sel := s.partitionRows(cols[:ng], cols[ng].Len())
	for p := range sel {
		if len(sel[p]) == 0 {
			continue
		}
		pt := &s.parts[p]
		pt.mu.Lock()
		err := func() error {
			if s.hybrid && !pt.spilled {
				if pt.table == nil {
					pt.table = newAggTable(s.layout.spec)
				}
				// mergePartialChunk walks whole columns, so materialize
				// just this partition's rows first.
				a := newRowAppender(s.layout.partialTypes())
				for _, r := range sel[p] {
					for i, c := range cols {
						a.cols[i].AppendRowFrom(c, r)
					}
				}
				prev := pt.table.bytes
				if err := pt.table.mergePartialChunk(a.cols, ng); err != nil {
					return err
				}
				s.ctx.memGrow(pt.table.bytes - prev)
				return nil
			}
			if pt.partial == nil {
				pt.partial = newRowAppender(s.layout.partialTypes())
			}
			for _, r := range sel[p] {
				for i, c := range cols {
					pt.partial.cols[i].AppendRowFrom(c, r)
				}
			}
			if pt.partial.rows() >= vector.DefaultChunkSize {
				return s.writeBuf(pt.partial, &pt.partialRefs)
			}
			return nil
		}()
		pt.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return s.spillUntilFits()
}

// finish flushes all buffered rows and counts the partitions that went
// to disk vs the ones hybrid mode kept resident (surfaced through
// SpillStats and, under EXPLAIN ANALYZE, the operator's tap).
func (s *aggSpiller) finish() error {
	var spilled, resident int64
	for p := range s.parts {
		pt := &s.parts[p]
		if pt.raw != nil {
			if err := s.writeBuf(pt.raw, &pt.rawRefs); err != nil {
				return err
			}
		}
		if pt.partial != nil {
			if err := s.writeBuf(pt.partial, &pt.partialRefs); err != nil {
				return err
			}
		}
		if len(pt.rawRefs) > 0 || len(pt.partialRefs) > 0 {
			spilled++
		} else if pt.table != nil && len(pt.table.groups) > 0 {
			resident++
		}
	}
	s.ctx.spillStats().addPartitions(spilled)
	s.ctx.spillStats().addResident(resident)
	if tap := s.layout.spec.Hints.Tap; tap != nil {
		tap.SpillSpilled.Add(spilled)
		tap.SpillResident.Add(resident)
	}
	return nil
}

// release frees the spiller's file once every partition is processed.
func (s *aggSpiller) release() {
	if s.file != nil {
		s.file.Release()
		s.file = nil
	}
}

// ------------------------------------------------------- state codec

// encodeAggState serializes one aggregate's partial state: counts and
// sums fixed-width, min/max as optional value keys, the DISTINCT set
// as length-prefixed entries. appendValueKey round-trips bit-exactly
// (floats by bit pattern), so partial states survive disk unchanged.
func encodeAggState(buf []byte, st *aggState) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.count))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.sumI))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.sumF))
	buf = appendOptValue(buf, st.min)
	buf = appendOptValue(buf, st.max)
	if st.distinct == nil {
		buf = binary.LittleEndian.AppendUint32(buf, 0xFFFFFFFF)
		return buf
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.distinct)))
	for k := range st.distinct {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
	}
	return buf
}

func appendOptValue(buf []byte, v vector.Value) []byte {
	if v.Type() == vector.Invalid {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	return appendValueKey(buf, v)
}

func decodeAggState(b []byte) (aggState, error) {
	var st aggState
	if len(b) < 24 {
		return st, fmt.Errorf("exec: truncated agg state")
	}
	st.count = int64(binary.LittleEndian.Uint64(b))
	st.sumI = int64(binary.LittleEndian.Uint64(b[8:]))
	st.sumF = math.Float64frombits(binary.LittleEndian.Uint64(b[16:]))
	b = b[24:]
	var err error
	if st.min, b, err = decodeOptValue(b); err != nil {
		return st, err
	}
	if st.max, b, err = decodeOptValue(b); err != nil {
		return st, err
	}
	if len(b) < 4 {
		return st, fmt.Errorf("exec: truncated agg state distinct count")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if n == 0xFFFFFFFF {
		if len(b) != 0 {
			return st, fmt.Errorf("exec: trailing agg state bytes")
		}
		return st, nil
	}
	st.distinct = make(map[string]struct{}, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return st, fmt.Errorf("exec: truncated distinct entry")
		}
		l := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if len(b) < l {
			return st, fmt.Errorf("exec: truncated distinct entry")
		}
		st.distinct[string(b[:l])] = struct{}{}
		b = b[l:]
	}
	if len(b) != 0 {
		return st, fmt.Errorf("exec: trailing agg state bytes")
	}
	return st, nil
}

func decodeOptValue(b []byte) (vector.Value, []byte, error) {
	if len(b) < 1 {
		return vector.Null(), nil, fmt.Errorf("exec: truncated agg state value")
	}
	if b[0] == 0 {
		return vector.Value{}, b[1:], nil
	}
	return decodeValueKey(b[1:])
}

// ------------------------------------------------------- consumer

// aggShared is the spill state shared by every consumer of one
// aggregation: the first consumer to overflow creates the spiller,
// and all consumers route into the same partition files afterwards.
type aggShared struct {
	mu      sync.Mutex
	layout  *aggLayout
	spiller *aggSpiller
}

// get returns the shared spiller, creating it (with a layout derived
// from the caller's evaluated vectors) on first use.
func (sh *aggShared) get(ctx *Context, spec *plan.Aggregate, groupVecs, argVecs []*vector.Vector) *aggSpiller {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.spiller == nil {
		sh.layout = newAggLayout(spec, groupVecs, argVecs)
		sh.spiller = newAggSpiller(ctx, sh.layout, 0)
	}
	return sh.spiller
}

// aggConsumer is one consumption thread's aggregation state: an
// in-memory table that converts to grace-partitioned spill routing
// when the query's footprint exceeds its budget.
type aggConsumer struct {
	ctx     *Context
	spec    *plan.Aggregate
	shared  *aggShared
	table   *aggTable
	spiller *aggSpiller
}

func newAggConsumer(ctx *Context, spec *plan.Aggregate, shared *aggShared) *aggConsumer {
	return &aggConsumer{ctx: ctx, spec: spec, shared: shared, table: newAggTable(spec)}
}

// consume folds one chunk, switching to spill routing once over
// budget. morsel is the chunk's global input index.
func (c *aggConsumer) consume(ch *vector.Chunk, morsel int) error {
	t := c.table
	if t == nil {
		return c.routeChunk(ch, morsel)
	}
	prev := t.bytes
	if err := t.consume(ch, morsel); err != nil {
		return err
	}
	c.ctx.memGrow(t.bytes - prev)
	if c.ctx.shouldSpill(t.bytes) {
		c.spiller = c.shared.get(c.ctx, c.spec, t.groupVecs, t.argVecs)
		if err := c.spiller.dumpTable(t); err != nil {
			return err
		}
		c.table = nil
	}
	return nil
}

// routeChunk evaluates a chunk's group/arg expressions and routes the
// rows to spill partitions.
func (c *aggConsumer) routeChunk(ch *vector.Chunk, morsel int) error {
	groupVecs := make([]*vector.Vector, len(c.spec.GroupBy))
	for i, g := range c.spec.GroupBy {
		v, err := Evaluate(g, ch)
		if err != nil {
			return err
		}
		groupVecs[i] = v
	}
	argVecs := make([]*vector.Vector, len(c.spec.Aggs))
	for i, s := range c.spec.Aggs {
		if s.Arg == nil {
			continue
		}
		v, err := Evaluate(s.Arg, ch)
		if err != nil {
			return err
		}
		argVecs[i] = v
	}
	return c.spiller.routeVecs(groupVecs, argVecs, ch.NumRows(), func(r int) int64 {
		return int64(morsel)<<32 | int64(r)
	})
}

func (c *aggConsumer) spilled() bool { return c.spiller != nil }

// ------------------------------------------------------- emitter

// aggEmitter streams the aggregation result: a single in-memory chunk
// on the fast path, or the firstSeen-ordered merge of partition runs
// after a spill.
type aggEmitter struct {
	chunk  *vector.Chunk
	merger *runMerger
	done   bool
}

func (e *aggEmitter) next(ctx *Context) (*vector.Chunk, error) {
	if e == nil || e.done {
		return nil, nil
	}
	if e.chunk != nil {
		e.done = true
		return e.chunk, nil
	}
	ch, err := e.merger.next(ctx)
	if err != nil {
		return nil, err
	}
	if ch == nil {
		e.done = true
	}
	return ch, nil
}

func (e *aggEmitter) close() {
	if e != nil {
		e.merger.close()
	}
}

// aggPartSource is one partition's spilled data: chunk refs into a
// shared spill file.
type aggPartSource struct {
	file        *spill.File
	rawRefs     []spill.ChunkRef
	partialRefs []spill.ChunkRef
}

// finishAggEmit turns the consumers' accumulated state into an
// emitter. With no spill anywhere, in-memory tables merge exactly as
// before (worker order, first-appearance emit). Once any consumer
// spilled, the remaining in-memory tables are merged and dumped into
// the shared spiller too, and every partition is processed to a
// firstSeen-sorted run; the runs merge back into global
// first-appearance order.
// mergeConsumerTables folds the consumers' in-memory tables into one,
// in consumer (worker-index) order — the order the determinism
// argument and the float-sum caveat are stated against. Returns nil
// when no consumer holds a non-empty table.
func mergeConsumerTables(consumers []*aggConsumer) (*aggTable, error) {
	var base *aggTable
	var byKey map[string]int32
	for _, c := range consumers {
		if c.table == nil || len(c.table.groups) == 0 {
			continue
		}
		if base == nil {
			base = c.table
			continue
		}
		if byKey == nil {
			byKey = base.mergeKeyMap()
		}
		if err := base.merge(c.table, byKey); err != nil {
			return nil, err
		}
	}
	return base, nil
}

func finishAggEmit(ctx *Context, spec *plan.Aggregate, consumers []*aggConsumer, shared *aggShared) (*aggEmitter, error) {
	if shared.spiller == nil {
		base, err := mergeConsumerTables(consumers)
		if err != nil {
			return nil, err
		}
		if base == nil {
			base = newAggTable(spec)
		}
		base.ensureGlobalGroup()
		ch, err := base.emit()
		// The aggregation state (all consumers' bytes, transferred into
		// base by merge) dies here; only the emitted chunk lives on.
		ctx.memShrink(base.bytes)
		if err != nil {
			return nil, err
		}
		return &aggEmitter{chunk: ch}, nil
	}

	// Dump leftover in-memory tables (merged in consumer order, the
	// same order the in-memory path merges) into the shared spiller so
	// partition processing sees every consumer's state uniformly.
	sp := shared.spiller
	leftover, err := mergeConsumerTables(consumers)
	if err != nil {
		return nil, err
	}
	if leftover != nil {
		if err := sp.dumpTable(leftover); err != nil {
			return nil, err
		}
	}
	if err := sp.finish(); err != nil {
		return nil, err
	}

	// Partition output runs that cannot stay in memory share one
	// "out" file, created on first need and owned by the merger.
	var outFile *spill.File
	getOut := func() (*spill.File, error) {
		if outFile == nil {
			f, err := ctx.spillManager().Create("agg-out")
			if err != nil {
				return nil, err
			}
			outFile = f
		}
		return outFile, nil
	}

	var held int64
	runs, err := spillerRuns(ctx, spec, shared.layout, sp, 1, getOut, &held)
	if err != nil {
		ctx.memShrink(held)
		return nil, err
	}
	// Every partition is consumed; the spiller's file can go now. The
	// out-file lives until the merge drains.
	sp.release()
	var files []*spill.File
	if outFile != nil {
		files = append(files, outFile)
	}
	return &aggEmitter{merger: newRunMerger(ctx, nil, runs, -1, files, held)}, nil
}

// spillerRuns turns every partition of sp into firstSeen-sorted runs:
// resident tables (hybrid mode) never touched disk — their groups are
// already merged by key and emit directly — while spilled partitions
// re-aggregate (and recurse) via processAggPartition. A resident table
// excludes disk refs by construction: the routing paths keep the two
// mutually exclusive. nextLevel is the recursion level for spilled
// partitions.
func spillerRuns(ctx *Context, spec *plan.Aggregate, layout *aggLayout, sp *aggSpiller, nextLevel int, getOut func() (*spill.File, error), held *int64) ([]*mergeRun, error) {
	var runs []*mergeRun
	for p := 0; p < spillFanout; p++ {
		pt := &sp.parts[p]
		if pt.table != nil {
			t := pt.table
			pt.table = nil
			if len(t.groups) == 0 {
				ctx.memShrink(t.bytes)
				continue
			}
			run, err := t.emitRun()
			ctx.memShrink(t.bytes)
			if err != nil {
				return nil, err
			}
			mr, err := maybeSpillAggRun(ctx, run, getOut, held)
			if err != nil {
				return nil, err
			}
			runs = append(runs, mr)
			continue
		}
		if len(pt.rawRefs) == 0 && len(pt.partialRefs) == 0 {
			continue
		}
		src := aggPartSource{file: sp.file, rawRefs: pt.rawRefs, partialRefs: pt.partialRefs}
		prs, err := processAggPartition(ctx, spec, layout, src, nextLevel, getOut, held)
		if err != nil {
			return nil, err
		}
		runs = append(runs, prs...)
	}
	return runs, nil
}

// processAggPartition re-aggregates one partition: partial rows merge
// by key, raw rows replay, and an over-budget partition re-partitions
// recursively at the next hash level. It returns the partition's
// groups as firstSeen-sorted runs (several after recursion), spilling
// each run that would not fit in memory to the shared out-file.
func processAggPartition(ctx *Context, spec *plan.Aggregate, layout *aggLayout, src aggPartSource, level int, getOut func() (*spill.File, error), held *int64) ([]*mergeRun, error) {
	t := newAggTable(spec)
	var sub *aggSpiller
	ng := len(layout.groupTypes)

	overflow := func() error {
		if sub != nil || level >= maxSpillLevels || !ctx.shouldSpill(t.bytes) {
			return nil
		}
		sub = newAggSpiller(ctx, layout, level)
		if err := sub.dumpTable(t); err != nil {
			return err
		}
		t = nil
		return nil
	}

	// Partials first, then raw rows: every group a raw row touches
	// either already has its pre-spill partial merged in, or never had
	// one.
	for _, ref := range src.partialRefs {
		if ctx.interrupted() {
			return nil, ErrCancelled
		}
		cols, err := src.file.ReadChunkAt(ref)
		if err != nil {
			return nil, err
		}
		if t != nil {
			prev := t.bytes
			if err := t.mergePartialChunk(cols, ng); err != nil {
				return nil, err
			}
			ctx.memGrow(t.bytes - prev)
			if err := overflow(); err != nil {
				return nil, err
			}
		} else if err := sub.reroutePartialChunk(cols, ng); err != nil {
			return nil, err
		}
	}
	for _, ref := range src.rawRefs {
		if ctx.interrupted() {
			return nil, ErrCancelled
		}
		cols, err := src.file.ReadChunkAt(ref)
		if err != nil {
			return nil, err
		}
		groupVecs := cols[:ng]
		argVecs := make([]*vector.Vector, len(spec.Aggs))
		for i := range spec.Aggs {
			if layout.argIdx[i] >= 0 {
				argVecs[i] = cols[ng+layout.argIdx[i]]
			}
		}
		pos := cols[len(cols)-1].Int64s()
		if t != nil {
			prev := t.bytes
			if err := t.consumeVecs(groupVecs, argVecs, len(pos), func(r int) int64 { return pos[r] }); err != nil {
				return nil, err
			}
			ctx.memGrow(t.bytes - prev)
			if err := overflow(); err != nil {
				return nil, err
			}
		} else if err := sub.routeVecs(groupVecs, argVecs, len(pos), func(r int) int64 { return pos[r] }); err != nil {
			return nil, err
		}
	}

	if sub == nil {
		run, err := t.emitRun()
		ctx.memShrink(t.bytes)
		if err != nil {
			return nil, err
		}
		mr, err := maybeSpillAggRun(ctx, run, getOut, held)
		if err != nil {
			return nil, err
		}
		return []*mergeRun{mr}, nil
	}
	if err := sub.finish(); err != nil {
		return nil, err
	}
	runs, err := spillerRuns(ctx, spec, layout, sub, level+1, getOut, held)
	if err != nil {
		return nil, err
	}
	sub.release()
	return runs, nil
}

// maybeSpillAggRun keeps a partition's output run in memory when it
// fits (accounting its bytes into *held, released when the merger
// closes), writing it to the shared out-file when the query is
// (still) over budget so merge-time memory stays bounded by
// O(partitions) windows.
func maybeSpillAggRun(ctx *Context, run *sortedRun, getOut func() (*spill.File, error), held *int64) (*mergeRun, error) {
	if run.data.NumRows() == 0 {
		return newMemRun(run), nil
	}
	if ctx.spillEnabled() && ctx.overBudget() {
		f, err := getOut()
		if err != nil {
			return nil, err
		}
		mr, err := spillSortedRun(f, run, nil)
		if err != nil {
			return nil, err
		}
		ctx.spillStats().addRuns(1)
		return mr, nil
	}
	b := runBytes(run)
	*held += b
	ctx.memGrow(b)
	return newMemRun(run), nil
}

// mergePartialChunk folds a chunk of spilled partial-state rows into
// the table (group key columns, firstSeen, per-agg state blobs).
func (t *aggTable) mergePartialChunk(cols []*vector.Vector, ng int) error {
	groupVecs := cols[:ng]
	firstSeen := cols[ng].Int64s()
	n := len(firstSeen)
	for r := 0; r < n; r++ {
		g := t.getOrCreate(groupVecs, r, firstSeen[r])
		for i := range t.spec.Aggs {
			st, err := decodeAggState(cols[ng+1+i].Blobs()[r])
			if err != nil {
				return err
			}
			// Conservative footprint for the merged-in state: distinct
			// entries plus retained MIN/MAX values (mergeAggState may
			// keep either side; counting the incoming one can only
			// overcount, which errs toward spilling).
			for k := range st.distinct {
				t.bytes += int64(len(k)) + 48
			}
			if st.min.Type() != vector.Invalid {
				t.bytes += valueBytes(st.min)
			}
			if st.max.Type() != vector.Invalid {
				t.bytes += valueBytes(st.max)
			}
			if err := mergeAggState(&g.aggs[i], &st); err != nil {
				return err
			}
		}
	}
	return nil
}
