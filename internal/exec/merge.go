// Sorted-run machinery shared by the sort operators, the spilled
// aggregate's ordered emission and the spilled join's order-restoring
// external sort: run generation (runBuilder), loser-tree k-way merge
// over streaming run cursors (loserTree / runMerger), and spill of
// whole sorted runs to temp files when the query's memory budget is
// exceeded.
//
// A run is a sorted sequence of rows; in memory it is one window
// (sortedRun), on disk it is a sequence of chunk-sized windows read
// back lazily, so merging k spilled runs holds O(k) windows — not the
// input — in memory. Every row carries its global input position; the
// merge breaks key ties by position, which makes the output
// byte-identical to a serial stable sort no matter how rows were
// distributed over runs, workers or spill files.
package exec

import (
	"math"
	"runtime"
	"sort"

	"vexdb/internal/plan"
	"vexdb/internal/spill"
	"vexdb/internal/vector"
)

// sortRunCap bounds how many sorted runs parallel run generation may
// produce. Context.Parallelism is an upper bound on concurrency, but
// producing more runs than physical cores adds no sort parallelism —
// it only widens the merge, which is pure overhead on the consumer.
// Tests override the cap to exercise wide merges on small machines.
// (Budget-forced spilling can still produce more runs than the cap:
// each spill of a worker's buffer is its own run.)
var sortRunCap = runtime.NumCPU()

// compareKeyRows compares row ra of avecs against row rb of bvecs
// under the sort keys, returning the output-order comparison (<0 when
// a precedes b). NULLs sort last ascending, first descending; with the
// Float64 total order in vector.Value.Compare this is transitive even
// over NaN-bearing keys. Serial sort, parallel merge and spilled runs
// share it so every path orders rows identically.
func compareKeyRows(keys []plan.SortKey, avecs []*vector.Vector, ra int, bvecs []*vector.Vector, rb int) (int, error) {
	for ki, k := range keys {
		av, bv := avecs[ki], bvecs[ki]
		an, bn := av.IsNull(ra), bv.IsNull(rb)
		if an || bn {
			if an == bn {
				continue
			}
			c := -1 // non-NULL first: NULLs last ascending
			if an {
				c = 1
			}
			if k.Desc {
				c = -c
			}
			return c, nil
		}
		c, err := compareKeyVals(av, ra, bv, rb)
		if err != nil {
			return 0, err
		}
		if c == 0 {
			continue
		}
		if k.Desc {
			c = -c
		}
		return c, nil
	}
	return 0, nil
}

// compareKeyVals compares two non-NULL key cells, with typed fast
// paths for the common column types — this sits under every sort
// comparison and every merge step, where boxing each cell into a
// vector.Value costs more than the comparison itself. The Float64
// path mirrors Value.Compare's total order (NaN greatest, NaN == NaN).
func compareKeyVals(av *vector.Vector, ra int, bv *vector.Vector, rb int) (int, error) {
	if t := av.Type(); t == bv.Type() {
		switch t {
		case vector.Int64:
			return cmpOrdered(av.Int64s()[ra], bv.Int64s()[rb]), nil
		case vector.Float64:
			a, b := av.Float64s()[ra], bv.Float64s()[rb]
			an, bn := math.IsNaN(a), math.IsNaN(b)
			switch {
			case an && bn:
				return 0, nil
			case an:
				return 1, nil
			case bn:
				return -1, nil
			}
			return cmpOrdered(a, b), nil
		case vector.Int32:
			return cmpOrdered(av.Int32s()[ra], bv.Int32s()[rb]), nil
		case vector.String:
			return cmpOrdered(av.Strings()[ra], bv.Strings()[rb]), nil
		}
	}
	return av.Get(ra).Compare(bv.Get(rb))
}

func cmpOrdered[T int32 | int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// sortedRun is one fully sorted window of rows: the data columns, the
// evaluated key columns in key order, and each row's unique global
// input position used as the merge tiebreak.
type sortedRun struct {
	data *vector.Chunk
	keys []*vector.Vector
	pos  []int64
}

// mergeRun is one sorted input of the loser-tree merge: the current
// window plus a cursor, and — for spilled runs — a fetch that loads
// the next window from disk. An in-memory run is a single window.
// Spilled runs do not own their file (many runs share one physical
// file); the merger that consumes them holds and releases the files.
type mergeRun struct {
	cur   *sortedRun
	idx   int
	fetch func() (*sortedRun, error) // nil for in-memory runs
	done  bool
}

// newMemRun wraps an in-memory sorted run.
func newMemRun(r *sortedRun) *mergeRun {
	mr := &mergeRun{cur: r}
	if r == nil || r.data.NumRows() == 0 {
		mr.done = true
	}
	return mr
}

// advance moves the cursor one row, loading the next window when the
// current one is exhausted.
func (r *mergeRun) advance() error {
	if r.done {
		return nil
	}
	r.idx++
	if r.idx < r.cur.data.NumRows() {
		return nil
	}
	if r.fetch != nil {
		win, err := r.fetch()
		if err != nil {
			r.done = true
			return err
		}
		if win != nil && win.data.NumRows() > 0 {
			r.cur, r.idx = win, 0
			return nil
		}
	}
	r.done = true
	return nil
}

// ------------------------------------------------------- loser tree

// loserTree merges k sorted runs. Leaves are run fronts; each internal
// node remembers the loser of its subtree's match, so replacing the
// winner replays exactly one root path (log k comparisons per row)
// instead of a full tournament. Leaf s maps to tree slot s+k with
// parent(x) = x/2; internal nodes occupy 1..k-1.
type loserTree struct {
	keys []plan.SortKey
	runs []*mergeRun
	node []int // node[t] = run index of the loser at internal node t
	win  int   // current overall winner, -1 when empty
	err  error // first comparison or window-fetch error; output is invalid after
}

func newLoserTree(keys []plan.SortKey, runs []*mergeRun) *loserTree {
	lt := &loserTree{
		keys: keys,
		runs: runs,
		node: make([]int, len(runs)),
		win:  -1,
	}
	switch len(runs) {
	case 0:
	case 1:
		lt.win = 0
	default:
		lt.win = lt.build(1)
	}
	return lt
}

// build plays the initial tournament for the subtree rooted at
// internal node t, recording losers and returning the winner.
func (lt *loserTree) build(t int) int {
	k := len(lt.runs)
	if t >= k {
		return t - k // leaf
	}
	a := lt.build(2 * t)
	b := lt.build(2*t + 1)
	if lt.beats(b, a) {
		a, b = b, a
	}
	lt.node[t] = b
	return a
}

// replay re-runs the matches on leaf s's root path after its run
// advanced.
func (lt *loserTree) replay(s int) {
	k := len(lt.runs)
	if k < 2 {
		return
	}
	for t := (s + k) / 2; t >= 1; t /= 2 {
		if lt.beats(lt.node[t], s) {
			s, lt.node[t] = lt.node[t], s
		}
	}
	lt.win = s
}

// beats reports whether run a's front row precedes run b's. Exhausted
// runs lose to everything, so the winner is exhausted only when every
// run is.
func (lt *loserTree) beats(a, b int) bool {
	if lt.err != nil {
		return false
	}
	ra, rb := lt.runs[a], lt.runs[b]
	if ra.done || rb.done {
		return rb.done && !ra.done
	}
	c, err := compareKeyRows(lt.keys, ra.cur.keys, ra.idx, rb.cur.keys, rb.idx)
	if err != nil {
		lt.err = err
		return false
	}
	if c != 0 {
		return c < 0
	}
	// Global input positions are unique, so the tiebreak is total and
	// the merge order deterministic.
	return ra.cur.pos[ra.idx] < rb.cur.pos[rb.idx]
}

// next returns the winning run's current window and row, then advances
// the tree past that row. ok is false once all runs are exhausted.
// The returned window stays valid after the advance even when the
// winner moved to its next spilled window.
func (lt *loserTree) next() (win *sortedRun, row int, ok bool) {
	w := lt.win
	if w < 0 || lt.runs[w].done || lt.err != nil {
		return nil, 0, false
	}
	r := lt.runs[w]
	win, row = r.cur, r.idx
	if err := r.advance(); err != nil && lt.err == nil {
		lt.err = err
	}
	lt.replay(w)
	return win, row, true
}

// ------------------------------------------------------- run builder

// topKCompactFloor keeps top-k compaction from thrashing on small
// buffers: the buffer must hold at least this many rows (and twice the
// limit) before a compaction pays for itself.
const topKCompactFloor = 4096

// runBuilder accumulates rows and turns them into sorted runs. Under
// a memory budget it writes full runs to spill files whenever the
// query's tracked footprint exceeds the budget; with a small limit
// hint it keeps only the top-k rows via periodic compaction, so a
// `ORDER BY ... LIMIT k` never materializes more than O(k) rows per
// builder. Builders are single-goroutine; parallel sort gives each
// worker its own, sharing the query-wide tracker.
type runBuilder struct {
	ctx    *Context
	keys   []plan.SortKey
	colKey []int // key i -> data column index for ColRef keys, else -1
	limit  int64 // top-k bound (offset+count); <=0 unbounded
	label  string

	data      []*vector.Vector // accumulated data columns
	extraKeys []*vector.Vector // accumulated non-ColRef key columns
	pos       []int64
	bytes     int64 // tracked estimate for the current buffer

	file *spill.File // shared by all of this builder's spilled runs
	runs []*mergeRun // spilled runs completed so far
	held int64       // tracker bytes of the final in-memory run
}

func newRunBuilder(ctx *Context, keys []plan.SortKey, limit int64, label string) *runBuilder {
	colKey := make([]int, len(keys))
	for i, k := range keys {
		colKey[i] = -1
		if cr, ok := k.Expr.(*plan.ColRef); ok {
			colKey[i] = cr.Idx
		}
	}
	return &runBuilder{ctx: ctx, keys: keys, colKey: colKey, limit: limit, label: label}
}

// add appends one chunk. Row r's global position is posBase+r; bases
// must be unique and non-overlapping across all add calls of all
// builders feeding one merge (callers use a running row count or
// morsel<<32).
func (b *runBuilder) add(ch *vector.Chunk, posBase int64) error {
	n := ch.NumRows()
	if n == 0 {
		return nil
	}
	if b.data == nil {
		b.data = make([]*vector.Vector, ch.NumCols())
		for i := range b.data {
			b.data[i] = vector.New(ch.Col(i).Type(), n)
		}
	}
	var added int64
	for i := range b.data {
		b.data[i].AppendVector(ch.Col(i))
		added += vectorBytes(ch.Col(i))
	}
	ei := 0
	for ki, k := range b.keys {
		if b.colKey[ki] >= 0 {
			continue
		}
		kv, err := Evaluate(k.Expr, ch)
		if err != nil {
			return err
		}
		if b.extraKeys == nil {
			b.extraKeys = make([]*vector.Vector, b.numExtraKeys())
		}
		if b.extraKeys[ei] == nil {
			b.extraKeys[ei] = vector.New(kv.Type(), n)
		}
		b.extraKeys[ei].AppendVector(kv)
		added += vectorBytes(kv)
		ei++
	}
	for r := 0; r < n; r++ {
		b.pos = append(b.pos, posBase+int64(r))
	}
	added += 8 * int64(n)
	b.bytes += added
	b.ctx.memGrow(added)

	if b.limit > 0 && int64(len(b.pos)) >= 2*b.limit && len(b.pos) >= topKCompactFloor {
		if err := b.compact(); err != nil {
			return err
		}
	}
	if len(b.pos) > 0 && b.ctx.shouldSpill(b.bytes) {
		return b.spillCurrent()
	}
	return nil
}

func (b *runBuilder) numExtraKeys() int {
	n := 0
	for _, ck := range b.colKey {
		if ck < 0 {
			n++
		}
	}
	return n
}

// keyVecs resolves the key columns over the current buffer.
func (b *runBuilder) keyVecs() []*vector.Vector {
	out := make([]*vector.Vector, len(b.keys))
	ei := 0
	for i, ck := range b.colKey {
		if ck >= 0 {
			out[i] = b.data[ck]
			continue
		}
		out[i] = b.extraKeys[ei]
		ei++
	}
	return out
}

// buildRun sorts the current buffer by (keys, position) into a run,
// truncated to the top-k limit when one is set, and resets the buffer.
func (b *runBuilder) buildRun() (*sortedRun, error) {
	keyVecs := b.keyVecs()
	idx := make([]int, len(b.pos))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	// The position tiebreak is explicit (not via sort stability):
	// after a top-k compaction or a spill the buffer is no longer in
	// position order, so stability alone would not reproduce it.
	sort.Slice(idx, func(x, y int) bool {
		a, bi := idx[x], idx[y]
		c, err := compareKeyRows(b.keys, keyVecs, a, keyVecs, bi)
		if err != nil {
			sortErr = err
			return false
		}
		if c != 0 {
			return c < 0
		}
		return b.pos[a] < b.pos[bi]
	})
	if sortErr != nil {
		return nil, sortErr
	}
	if b.limit > 0 && int64(len(idx)) > b.limit {
		idx = idx[:b.limit]
	}
	data := vector.NewChunk(b.data...)
	sortedData := data.Gather(idx)
	sortedPos := make([]int64, len(idx))
	for i, r := range idx {
		sortedPos[i] = b.pos[r]
	}
	sortedKeys := make([]*vector.Vector, len(b.keys))
	ei := 0
	for i, ck := range b.colKey {
		if ck >= 0 {
			// ColRef keys are the data column itself; reuse its gathered
			// form instead of gathering the same vector twice.
			sortedKeys[i] = sortedData.Col(ck)
			continue
		}
		sortedKeys[i] = b.extraKeys[ei].Gather(idx)
		ei++
	}
	b.ctx.memShrink(b.bytes)
	b.data, b.extraKeys, b.pos, b.bytes = nil, nil, nil, 0
	return &sortedRun{data: sortedData, keys: sortedKeys, pos: sortedPos}, nil
}

// compact sorts the buffer and keeps only the top-k rows, re-seeding
// the accumulators from the truncated run.
func (b *runBuilder) compact() error {
	run, err := b.buildRun()
	if err != nil {
		return err
	}
	b.adoptRun(run)
	return nil
}

// adoptRun replaces the buffer with a run's rows.
func (b *runBuilder) adoptRun(run *sortedRun) {
	b.data = run.data.Cols()
	b.pos = run.pos
	if ne := b.numExtraKeys(); ne > 0 {
		b.extraKeys = make([]*vector.Vector, 0, ne)
		for i, ck := range b.colKey {
			if ck < 0 {
				b.extraKeys = append(b.extraKeys, run.keys[i])
			}
		}
	}
	var bytes int64
	for _, c := range b.data {
		bytes += vectorBytes(c)
	}
	for _, c := range b.extraKeys {
		bytes += vectorBytes(c)
	}
	bytes += 8 * int64(len(b.pos))
	b.bytes = bytes
	b.ctx.memGrow(bytes)
}

// spillCurrent sorts the buffer into a run and writes it to the
// builder's spill file, freeing the buffer's memory.
func (b *runBuilder) spillCurrent() error {
	run, err := b.buildRun()
	if err != nil {
		return err
	}
	if b.file == nil {
		f, err := b.ctx.spillManager().Create(b.label)
		if err != nil {
			return err
		}
		b.file = f
	}
	mr, err := spillSortedRun(b.file, run, b.colKey)
	if err != nil {
		return err
	}
	b.ctx.spillStats().addRuns(1)
	b.runs = append(b.runs, mr)
	return nil
}

// finish returns every run the builder produced — the spilled runs
// plus the final in-memory run — and the spill file backing them (nil
// when nothing spilled). The final run stays resident through the
// whole merge, so its bytes remain on the query tracker (heldBytes);
// the merger that consumes the runs shrinks them at close. The caller
// owns releasing the file once the merge is done.
func (b *runBuilder) finish() ([]*mergeRun, *spill.File, error) {
	if len(b.pos) > 0 {
		run, err := b.buildRun()
		if err != nil {
			return nil, b.file, err
		}
		b.held = runBytes(run)
		b.ctx.memGrow(b.held)
		b.runs = append(b.runs, newMemRun(run))
	}
	return b.runs, b.file, nil
}

// heldBytes reports the tracker bytes the builder's in-memory run
// still occupies after finish.
func (b *runBuilder) heldBytes() int64 { return b.held }

// runBytes estimates a sorted run's resident footprint. Key columns
// aliasing data columns (ColRef keys) are not double-counted.
func runBytes(run *sortedRun) int64 {
	n := chunkBytes(run.data) + 8*int64(len(run.pos))
	for _, k := range run.keys {
		alias := false
		for _, c := range run.data.Cols() {
			if c == k {
				alias = true
				break
			}
		}
		if !alias {
			n += vectorBytes(k)
		}
	}
	return n
}

// spillSortedRun writes a sorted run into f — data columns, then the
// non-ColRef key columns, then the position column — and returns a
// file-backed mergeRun that streams it back one window at a time via
// positioned reads (many runs share one file). Evaluated key columns
// are persisted rather than re-derived on read, so spilling never
// re-evaluates key expressions (UDF keys are called exactly once per
// row, and computed keys cost no decode-time work).
func spillSortedRun(f *spill.File, run *sortedRun, colKey []int) (*mergeRun, error) {
	nd := run.data.NumCols()
	var extras []*vector.Vector
	for i, ck := range colKey {
		if ck < 0 {
			extras = append(extras, run.keys[i])
		}
	}
	n := run.data.NumRows()
	refs := make([]spill.ChunkRef, 0, (n+vector.DefaultChunkSize-1)/vector.DefaultChunkSize)
	for from := 0; from < n; from += vector.DefaultChunkSize {
		to := from + vector.DefaultChunkSize
		if to > n {
			to = n
		}
		cols := make([]*vector.Vector, 0, nd+len(extras)+1)
		for _, c := range run.data.Cols() {
			cols = append(cols, c.Slice(from, to))
		}
		for _, c := range extras {
			cols = append(cols, c.Slice(from, to))
		}
		cols = append(cols, vector.FromInt64s(run.pos[from:to]))
		ref, err := f.WriteChunkRef(cols)
		if err != nil {
			return nil, err
		}
		refs = append(refs, ref)
	}
	mr := &mergeRun{}
	next := 0
	mr.fetch = func() (*sortedRun, error) {
		if next >= len(refs) {
			return nil, nil
		}
		cols, err := f.ReadChunkAt(refs[next])
		if err != nil {
			return nil, err
		}
		next++
		return assembleRunWindow(cols, nd, colKey)
	}
	// Load the first window so the merge sees the run's front row.
	win, err := mr.fetch()
	if err != nil {
		return nil, err
	}
	if win == nil || win.data.NumRows() == 0 {
		mr.done = true
		return mr, nil
	}
	mr.cur = win
	return mr, nil
}

// assembleRunWindow reconstructs a window from a spilled run chunk:
// nd data columns, the non-ColRef key columns, then the position
// column.
func assembleRunWindow(cols []*vector.Vector, nd int, colKey []int) (*sortedRun, error) {
	data := vector.NewChunk(cols[:nd]...)
	keys := make([]*vector.Vector, len(colKey))
	ei := nd
	for i, ck := range colKey {
		if ck >= 0 {
			keys[i] = data.Col(ck)
			continue
		}
		keys[i] = cols[ei]
		ei++
	}
	pos := cols[len(cols)-1].Int64s()
	return &sortedRun{data: data, keys: keys, pos: pos}, nil
}

// ------------------------------------------------------- run merger

// runMerger streams the k-way merge of sorted runs as chunk-sized
// batches: fully sorted output, emitted incrementally, with an
// optional row bound (LIMIT pushdown) and the same cancellation
// cadence as every other chunk loop.
type runMerger struct {
	lt        *loserTree
	types     []vector.Type
	files     []*spill.File // backing files, released on close
	ctx       *Context
	held      int64 // tracker bytes of the in-memory runs, shrunk on close
	remaining int64 // rows the merge may still emit; <0 unbounded
}

// newRunMerger merges runs with an optional row bound. held is the
// tracker bytes the in-memory runs occupy (per runBuilder.heldBytes);
// the merger releases them at close, when the runs become garbage.
func newRunMerger(ctx *Context, keys []plan.SortKey, runs []*mergeRun, limit int64, files []*spill.File, held int64) *runMerger {
	m := &runMerger{lt: newLoserTree(keys, runs), files: files, ctx: ctx, held: held, remaining: -1}
	if limit > 0 {
		m.remaining = limit
	}
	for _, r := range runs {
		if !r.done {
			m.types = make([]vector.Type, r.cur.data.NumCols())
			for i := range m.types {
				m.types[i] = r.cur.data.Col(i).Type()
			}
			break
		}
	}
	return m
}

// next emits the next merged batch, nil at end. One batch per call so
// long merges observe cancellation between batches.
func (m *runMerger) next(ctx *Context) (*vector.Chunk, error) {
	if m.remaining == 0 || m.lt == nil {
		return nil, nil
	}
	if ctx.interrupted() {
		return nil, ErrCancelled
	}
	batch := vector.DefaultChunkSize
	if m.remaining >= 0 && int64(batch) > m.remaining {
		batch = int(m.remaining)
	}
	if len(m.lt.runs) == 1 {
		return m.nextSingle(batch)
	}
	cols := make([]*vector.Vector, len(m.types))
	for i, t := range m.types {
		cols[i] = vector.New(t, batch)
	}
	// Pop winners in contiguous spans: rows consumed from one run's
	// window are consecutive, so while the winner stays put
	// (duplicate-heavy keys, pre-sorted stretches) whole slices copy
	// in bulk.
	emitted := 0
	for emitted < batch {
		w := m.lt.win
		if w < 0 || m.lt.runs[w].done || m.lt.err != nil {
			break
		}
		r := m.lt.runs[w]
		win := r.cur
		start := r.idx
		count := 0
		for emitted < batch && m.lt.win == w && !r.done && r.cur == win && m.lt.err == nil {
			if _, _, ok := m.lt.next(); !ok {
				break
			}
			count++
			emitted++
		}
		if count == 0 {
			break
		}
		if count == 1 {
			for c := range cols {
				cols[c].AppendRowFrom(win.data.Col(c), start)
			}
			continue
		}
		for c := range cols {
			cols[c].AppendVector(win.data.Col(c).Slice(start, start+count))
		}
	}
	if err := m.lt.err; err != nil {
		return nil, err
	}
	if emitted == 0 {
		return nil, nil
	}
	if m.remaining > 0 {
		m.remaining -= int64(emitted)
	}
	return vector.NewChunk(cols...), nil
}

// nextSingle emits from a lone run without per-row merging: in-memory
// windows slice zero-copy; spilled windows stream through.
func (m *runMerger) nextSingle(batch int) (*vector.Chunk, error) {
	r := m.lt.runs[0]
	if r.done {
		return nil, nil
	}
	win := r.cur
	from := r.idx
	to := from + batch
	if n := win.data.NumRows(); to > n {
		to = n
	}
	// Advance the cursor past the emitted rows (loads the next spilled
	// window when this one drains).
	r.idx = to - 1
	if err := r.advance(); err != nil {
		return nil, err
	}
	if m.remaining > 0 {
		m.remaining -= int64(to - from)
	}
	return win.data.Slice(from, to), nil
}

// close releases the merge's backing spill files and returns the
// in-memory runs' bytes to the tracker (idempotent; the query's spill
// manager removes any files missed here at stream close).
func (m *runMerger) close() {
	if m == nil {
		return
	}
	for _, f := range m.files {
		f.Release()
	}
	m.files = nil
	m.ctx.memShrink(m.held)
	m.held = 0
}
