// Morsel-parallel sort: run generation + loser-tree merge. Workers
// claim morsels from a shared cursor, run the chunk-local pipeline
// stages, and accumulate surviving rows into one buffer per worker;
// when the input drains each worker sorts its buffer into a run using
// the total-order key comparator with the row's global input position
// as the final tiebreak. A loser tree then k-way-merges the runs, so
// consumers see fully sorted chunks incrementally — no re-sort, no
// full output materialization, and a LIMIT bound pushed into the
// merge stops it after the rows any consumer can observe.
//
// The global-position tiebreak makes the parallel output byte-equal to
// the serial sortOp (a stable sort over input in morsel order), no
// matter which worker claimed which morsel.
package exec

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"vexdb/internal/plan"
	"vexdb/internal/vector"
)

// sortRunCap bounds how many sorted runs generation may produce.
// Context.Parallelism is an upper bound on concurrency, but producing
// more runs than physical cores adds no sort parallelism — it only
// widens the merge, which is pure overhead on the consumer. Tests
// override the cap to exercise wide merges on small machines.
var sortRunCap = runtime.NumCPU()

// compareKeyRows compares row ra of avecs against row rb of bvecs
// under the sort keys, returning the output-order comparison (<0 when
// a precedes b). NULLs sort last ascending, first descending; with the
// Float64 total order in vector.Value.Compare this is transitive even
// over NaN-bearing keys. Serial sortOp and the parallel merge share it
// so both paths order rows identically.
func compareKeyRows(keys []plan.SortKey, avecs []*vector.Vector, ra int, bvecs []*vector.Vector, rb int) (int, error) {
	for ki, k := range keys {
		av, bv := avecs[ki], bvecs[ki]
		an, bn := av.IsNull(ra), bv.IsNull(rb)
		if an || bn {
			if an == bn {
				continue
			}
			c := -1 // non-NULL first: NULLs last ascending
			if an {
				c = 1
			}
			if k.Desc {
				c = -c
			}
			return c, nil
		}
		c, err := compareKeyVals(av, ra, bv, rb)
		if err != nil {
			return 0, err
		}
		if c == 0 {
			continue
		}
		if k.Desc {
			c = -c
		}
		return c, nil
	}
	return 0, nil
}

// compareKeyVals compares two non-NULL key cells, with typed fast
// paths for the common column types — this sits under every sort
// comparison and every merge step, where boxing each cell into a
// vector.Value costs more than the comparison itself. The Float64
// path mirrors Value.Compare's total order (NaN greatest, NaN == NaN).
func compareKeyVals(av *vector.Vector, ra int, bv *vector.Vector, rb int) (int, error) {
	if t := av.Type(); t == bv.Type() {
		switch t {
		case vector.Int64:
			return cmpOrdered(av.Int64s()[ra], bv.Int64s()[rb]), nil
		case vector.Float64:
			a, b := av.Float64s()[ra], bv.Float64s()[rb]
			an, bn := math.IsNaN(a), math.IsNaN(b)
			switch {
			case an && bn:
				return 0, nil
			case an:
				return 1, nil
			case bn:
				return -1, nil
			}
			return cmpOrdered(a, b), nil
		case vector.Int32:
			return cmpOrdered(av.Int32s()[ra], bv.Int32s()[rb]), nil
		case vector.String:
			return cmpOrdered(av.Strings()[ra], bv.Strings()[rb]), nil
		}
	}
	return av.Get(ra).Compare(bv.Get(rb))
}

func cmpOrdered[T int32 | int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// sortedRun is one worker's fully sorted slice of the input: the data
// rows, the evaluated key columns in the same order, and each row's
// global input position (morsel<<32 | row) used as the merge tiebreak.
type sortedRun struct {
	data *vector.Chunk
	keys []*vector.Vector
	pos  []int64
}

// sortRun evaluates the sort keys over the accumulated columns and
// sorts rows by (keys, global position).
func sortRun(keys []plan.SortKey, cols []*vector.Vector, pos []int64) (*sortedRun, error) {
	data := vector.NewChunk(cols...)
	keyVecs := make([]*vector.Vector, len(keys))
	for i, k := range keys {
		v, err := Evaluate(k.Expr, data)
		if err != nil {
			return nil, err
		}
		keyVecs[i] = v
	}
	idx := make([]int, data.NumRows())
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	// Rows accumulate in increasing global-position order (the shared
	// cursor hands morsels out ascending), so a stable sort leaves
	// key-equal rows in position order — the same tiebreak the merge
	// applies across runs — without paying for an explicit comparison.
	sort.SliceStable(idx, func(a, b int) bool {
		c, err := compareKeyRows(keys, keyVecs, idx[a], keyVecs, idx[b])
		if err != nil {
			sortErr = err
			return false
		}
		return c < 0
	})
	if sortErr != nil {
		return nil, sortErr
	}
	sortedPos := make([]int64, len(idx))
	for i, r := range idx {
		sortedPos[i] = pos[r]
	}
	sortedData := data.Gather(idx)
	sortedKeys := make([]*vector.Vector, len(keyVecs))
	for i, kv := range keyVecs {
		// ColRef keys evaluate to the data column itself; reuse its
		// gathered form instead of gathering the same vector twice.
		if j := chunkColIndex(data, kv); j >= 0 {
			sortedKeys[i] = sortedData.Col(j)
			continue
		}
		sortedKeys[i] = kv.Gather(idx)
	}
	return &sortedRun{data: sortedData, keys: sortedKeys, pos: sortedPos}, nil
}

// chunkColIndex returns the position of v among ch's columns (pointer
// identity), or -1.
func chunkColIndex(ch *vector.Chunk, v *vector.Vector) int {
	for i, c := range ch.Cols() {
		if c == v {
			return i
		}
	}
	return -1
}

// ------------------------------------------------------- loser tree

// loserTree merges k sorted runs. Leaves are run fronts; each internal
// node remembers the loser of its subtree's match, so replacing the
// winner replays exactly one root path (log k comparisons per row)
// instead of a full tournament. Leaf s maps to tree slot s+k with
// parent(x) = x/2; internal nodes occupy 1..k-1.
type loserTree struct {
	keys []plan.SortKey
	runs []*sortedRun
	pos  []int // per-run cursor
	node []int // node[t] = run index of the loser at internal node t
	win  int   // current overall winner, -1 when empty
	err  error // first key-comparison error; merge output is invalid after
}

func newLoserTree(keys []plan.SortKey, runs []*sortedRun) *loserTree {
	lt := &loserTree{
		keys: keys,
		runs: runs,
		pos:  make([]int, len(runs)),
		node: make([]int, len(runs)),
		win:  -1,
	}
	switch len(runs) {
	case 0:
	case 1:
		lt.win = 0
	default:
		lt.win = lt.build(1)
	}
	return lt
}

// build plays the initial tournament for the subtree rooted at
// internal node t, recording losers and returning the winner.
func (lt *loserTree) build(t int) int {
	k := len(lt.runs)
	if t >= k {
		return t - k // leaf
	}
	a := lt.build(2 * t)
	b := lt.build(2*t + 1)
	if lt.beats(b, a) {
		a, b = b, a
	}
	lt.node[t] = b
	return a
}

// replay re-runs the matches on leaf s's root path after its run
// advanced.
func (lt *loserTree) replay(s int) {
	k := len(lt.runs)
	if k < 2 {
		return
	}
	for t := (s + k) / 2; t >= 1; t /= 2 {
		if lt.beats(lt.node[t], s) {
			s, lt.node[t] = lt.node[t], s
		}
	}
	lt.win = s
}

// beats reports whether run a's front row precedes run b's. Exhausted
// runs lose to everything, so the winner is exhausted only when every
// run is.
func (lt *loserTree) beats(a, b int) bool {
	if lt.err != nil {
		return false
	}
	ra, rb := lt.runs[a], lt.runs[b]
	ea, eb := lt.pos[a] >= ra.data.NumRows(), lt.pos[b] >= rb.data.NumRows()
	if ea || eb {
		return eb && !ea
	}
	c, err := compareKeyRows(lt.keys, ra.keys, lt.pos[a], rb.keys, lt.pos[b])
	if err != nil {
		lt.err = err
		return false
	}
	if c != 0 {
		return c < 0
	}
	// Global input positions are unique, so the tiebreak is total and
	// the merge order deterministic.
	return ra.pos[lt.pos[a]] < rb.pos[lt.pos[b]]
}

// next pops the smallest remaining row, identified as (run, row), and
// advances the tree. ok is false once all runs are exhausted.
func (lt *loserTree) next() (run, row int, ok bool) {
	w := lt.win
	if w < 0 || lt.pos[w] >= lt.runs[w].data.NumRows() {
		return 0, 0, false
	}
	row = lt.pos[w]
	lt.pos[w]++
	lt.replay(w)
	return w, row, true
}

// ------------------------------------------------------- parallel sort

// parallelSortOp is the morsel-parallel ORDER BY operator: run
// generation fans out over the worker pool, then Next streams merged
// chunks off the loser tree, observing cancellation between merge
// batches and stopping early once the plan's LIMIT bound is met.
type parallelSortOp struct {
	spec    *plan.Sort
	pipe    *pipeSpec
	workers int

	ctx       *Context
	started   bool
	lt        *loserTree
	types     []vector.Type
	remaining int64 // rows the merge may still emit; <0 unbounded
}

func (s *parallelSortOp) Open(ctx *Context) error {
	s.ctx = ctx
	s.started = false
	s.lt = nil
	return nil
}

func (s *parallelSortOp) Next() (*vector.Chunk, error) {
	if !s.started {
		s.started = true
		s.remaining = -1
		if s.spec.Limit > 0 {
			s.remaining = s.spec.Limit
		}
		runs, err := s.buildRuns()
		if err != nil {
			return nil, err
		}
		if len(runs) == 0 {
			return nil, nil
		}
		s.types = make([]vector.Type, runs[0].data.NumCols())
		for i := range s.types {
			s.types[i] = runs[0].data.Col(i).Type()
		}
		s.lt = newLoserTree(s.spec.Keys, runs)
	}
	if s.lt == nil || s.remaining == 0 {
		return nil, nil
	}
	// One merge batch per Next call: a long merge observes
	// cancellation between batches.
	if s.ctx.interrupted() {
		return nil, ErrCancelled
	}
	batch := vector.DefaultChunkSize
	if s.remaining >= 0 && int64(batch) > s.remaining {
		batch = int(s.remaining)
	}
	if len(s.lt.runs) == 1 {
		// Single run (one worker produced rows): already fully sorted,
		// emit slices without per-row copies.
		run := s.lt.runs[0]
		from := s.lt.pos[0]
		if from >= run.data.NumRows() {
			return nil, nil
		}
		to := from + batch
		if n := run.data.NumRows(); to > n {
			to = n
		}
		s.lt.pos[0] = to
		if s.remaining > 0 {
			s.remaining -= int64(to - from)
		}
		return run.data.Slice(from, to), nil
	}
	cols := make([]*vector.Vector, len(s.types))
	for i, t := range s.types {
		cols[i] = vector.New(t, batch)
	}
	// Pop winners in contiguous spans: rows consumed from one run are
	// consecutive, so while the winner stays put (duplicate-heavy keys,
	// pre-sorted stretches) whole slices copy in bulk.
	emitted := 0
	for emitted < batch {
		w := s.lt.win
		if w < 0 {
			break
		}
		run := s.lt.runs[w]
		start := s.lt.pos[w]
		if start >= run.data.NumRows() {
			break
		}
		for emitted < batch && s.lt.win == w {
			if _, _, ok := s.lt.next(); !ok {
				break
			}
			emitted++
		}
		end := s.lt.pos[w]
		if end == start+1 {
			for c := range cols {
				cols[c].AppendRowFrom(run.data.Col(c), start)
			}
			continue
		}
		for c := range cols {
			cols[c].AppendVector(run.data.Col(c).Slice(start, end))
		}
	}
	if err := s.lt.err; err != nil {
		return nil, err
	}
	if emitted == 0 {
		s.lt = nil
		return nil, nil
	}
	if s.remaining > 0 {
		s.remaining -= int64(emitted)
	}
	return vector.NewChunk(cols...), nil
}

// buildRuns drains the input morsel-parallel into at most one sorted
// run per worker. Workers observe cancellation between morsels; a
// cancelled drain surfaces ErrCancelled rather than merging a partial
// input.
func (s *parallelSortOp) buildRuns() ([]*sortedRun, error) {
	n := s.pipe.src.open(s.ctx)
	workers := s.workers
	if cap := sortRunCap; cap >= 1 && workers > cap {
		workers = cap
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		return nil, nil
	}
	runs := make([]*sortedRun, workers)
	errs := make([]error, workers)
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var acc []*vector.Vector
			var pos []int64
			var sc pipeScratch
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() || s.ctx.interrupted() {
					break
				}
				ch, err := s.pipe.src.fetch(i)
				if err == nil {
					ch, err = s.pipe.apply(ch, &sc)
				}
				if err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				if ch == nil || ch.NumRows() == 0 {
					continue
				}
				if acc == nil {
					acc = make([]*vector.Vector, ch.NumCols())
					for c := range acc {
						acc[c] = vector.New(ch.Col(c).Type(), ch.NumRows())
					}
				}
				for c := range acc {
					acc[c].AppendVector(ch.Col(c))
				}
				for r := 0; r < ch.NumRows(); r++ {
					pos = append(pos, int64(i)<<32|int64(r))
				}
			}
			if acc == nil {
				return
			}
			run, err := sortRun(s.spec.Keys, acc, pos)
			if err != nil {
				errs[w] = err
				stop.Store(true)
				return
			}
			runs[w] = run
		}(w)
	}
	wg.Wait()
	s.pipe.src.finish()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if s.ctx.interrupted() {
		// Workers stopped mid-input; a merge over partial runs would
		// silently drop rows.
		return nil, ErrCancelled
	}
	out := runs[:0]
	for _, r := range runs {
		if r != nil {
			out = append(out, r)
		}
	}
	return out, nil
}

func (s *parallelSortOp) Close() error {
	// Run generation joins its workers before buildRuns returns, so
	// nothing is in flight here; finish is idempotent and flushes scan
	// accounting when the stream is abandoned before the first Next.
	s.pipe.src.finish()
	return nil
}

var _ Operator = (*parallelSortOp)(nil)
