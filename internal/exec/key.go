package exec

import (
	"encoding/binary"
	"math"

	"vexdb/internal/core"
	"vexdb/internal/plan"
	"vexdb/internal/vector"
)

// appendRowKey appends a type-tagged binary encoding of row i of v to
// key. The encoding is injective per type so it can serve as a hash
// map key for grouping, distinct and join probing.
func appendRowKey(key []byte, v *vector.Vector, i int) []byte {
	if v.IsNull(i) {
		return append(key, 0xFF)
	}
	switch v.Type() {
	case vector.Bool:
		if v.Bools()[i] {
			return append(key, 1, 1)
		}
		return append(key, 1, 0)
	case vector.Int32:
		key = append(key, 2)
		return binary.LittleEndian.AppendUint32(key, uint32(v.Int32s()[i]))
	case vector.Int64:
		key = append(key, 3)
		return binary.LittleEndian.AppendUint64(key, uint64(v.Int64s()[i]))
	case vector.Float64:
		key = append(key, 4)
		return binary.LittleEndian.AppendUint64(key, math.Float64bits(v.Float64s()[i]))
	case vector.String:
		s := v.Strings()[i]
		key = append(key, 5)
		key = binary.LittleEndian.AppendUint32(key, uint32(len(s)))
		return append(key, s...)
	case vector.Blob:
		b := v.Blobs()[i]
		key = append(key, 6)
		key = binary.LittleEndian.AppendUint32(key, uint32(len(b)))
		return append(key, b...)
	}
	return append(key, 0xFE)
}

// EvalPartitionedCall evaluates a bound UDF call over already
// evaluated argument vectors, partitioned across workers when the
// function allows it.
func EvalPartitionedCall(call *plan.Call, args []*vector.Vector, workers int) (*vector.Vector, error) {
	return core.EvalPartitioned(call.Fn, args, workers)
}
