package exec

import (
	"encoding/binary"
	"fmt"
	"math"

	"vexdb/internal/core"
	"vexdb/internal/plan"
	"vexdb/internal/vector"
)

// appendRowKey appends a type-tagged binary encoding of row i of v to
// key. The encoding is injective per type so it can serve as a hash
// map key for grouping, distinct and join probing.
func appendRowKey(key []byte, v *vector.Vector, i int) []byte {
	if v.IsNull(i) {
		return append(key, 0xFF)
	}
	switch v.Type() {
	case vector.Bool:
		if v.Bools()[i] {
			return append(key, 1, 1)
		}
		return append(key, 1, 0)
	case vector.Int32:
		key = append(key, 2)
		return binary.LittleEndian.AppendUint32(key, uint32(v.Int32s()[i]))
	case vector.Int64:
		key = append(key, 3)
		return binary.LittleEndian.AppendUint64(key, uint64(v.Int64s()[i]))
	case vector.Float64:
		key = append(key, 4)
		return binary.LittleEndian.AppendUint64(key, math.Float64bits(v.Float64s()[i]))
	case vector.String:
		s := v.Strings()[i]
		key = append(key, 5)
		key = binary.LittleEndian.AppendUint32(key, uint32(len(s)))
		return append(key, s...)
	case vector.Blob:
		b := v.Blobs()[i]
		key = append(key, 6)
		key = binary.LittleEndian.AppendUint32(key, uint32(len(b)))
		return append(key, b...)
	}
	return append(key, 0xFE)
}

// appendValueKey appends the same encoding appendRowKey produces, but
// reading from a materialized Value instead of a vector row. The two
// encodings must stay byte-identical: partitioned aggregation matches
// groups across worker tables by re-encoding their key values.
func appendValueKey(key []byte, v vector.Value) []byte {
	if v.IsNull() {
		return append(key, 0xFF)
	}
	switch v.Type() {
	case vector.Bool:
		if v.Bool() {
			return append(key, 1, 1)
		}
		return append(key, 1, 0)
	case vector.Int32:
		key = append(key, 2)
		return binary.LittleEndian.AppendUint32(key, uint32(int32(v.Int64())))
	case vector.Int64:
		key = append(key, 3)
		return binary.LittleEndian.AppendUint64(key, uint64(v.Int64()))
	case vector.Float64:
		key = append(key, 4)
		return binary.LittleEndian.AppendUint64(key, math.Float64bits(v.Float64()))
	case vector.String:
		s := v.Str()
		key = append(key, 5)
		key = binary.LittleEndian.AppendUint32(key, uint32(len(s)))
		return append(key, s...)
	case vector.Blob:
		b := v.Bytes()
		key = append(key, 6)
		key = binary.LittleEndian.AppendUint32(key, uint32(len(b)))
		return append(key, b...)
	}
	return append(key, 0xFE)
}

// decodeValueKey decodes one value off the front of a key produced by
// appendRowKey/appendValueKey, returning the value and the remaining
// bytes. The distinct-aggregate finalizer uses it to recover argument
// values from a merged per-worker key set, so the three functions must
// stay encoding-compatible.
func decodeValueKey(key []byte) (vector.Value, []byte, error) {
	if len(key) == 0 {
		return vector.Null(), nil, fmt.Errorf("exec: empty value key")
	}
	tag, rest := key[0], key[1:]
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("exec: truncated value key (tag %#x)", tag)
		}
		return nil
	}
	switch tag {
	case 0xFF:
		return vector.Null(), rest, nil
	case 1:
		if err := need(1); err != nil {
			return vector.Null(), nil, err
		}
		return vector.NewBool(rest[0] != 0), rest[1:], nil
	case 2:
		if err := need(4); err != nil {
			return vector.Null(), nil, err
		}
		return vector.NewInt32(int32(binary.LittleEndian.Uint32(rest))), rest[4:], nil
	case 3:
		if err := need(8); err != nil {
			return vector.Null(), nil, err
		}
		return vector.NewInt64(int64(binary.LittleEndian.Uint64(rest))), rest[8:], nil
	case 4:
		if err := need(8); err != nil {
			return vector.Null(), nil, err
		}
		return vector.NewFloat64(math.Float64frombits(binary.LittleEndian.Uint64(rest))), rest[8:], nil
	case 5, 6:
		if err := need(4); err != nil {
			return vector.Null(), nil, err
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if err := need(n); err != nil {
			return vector.Null(), nil, err
		}
		if tag == 5 {
			return vector.NewString(string(rest[:n])), rest[n:], nil
		}
		return vector.NewBlob(append([]byte(nil), rest[:n]...)), rest[n:], nil
	}
	return vector.Null(), nil, fmt.Errorf("exec: corrupt value key tag %#x", tag)
}

// groupIndex maps group-key rows to dense group ids. Single fixed-width
// keys (bool/int32/int64) and single string keys bypass the byte-slice
// encoding entirely; the generic path reuses one key buffer and relies
// on Go's map[string]([]byte) lookup optimization, so the only
// per-group-lookup allocation left is the one insert per distinct key.
type groupIndex struct {
	kind    keyKind
	fastInt map[uint64]int32
	fastStr map[string]int32
	slow    map[string]int32
	nullID  int32 // dense id of the single-key NULL group, -1 if unseen
	buf     []byte
	n       int32
}

type keyKind uint8

const (
	keyKindNone  keyKind = iota // no key columns: one global group
	keyKindInt                  // single bool/int32/int64 key
	keyKindStr                  // single string key
	keyKindBytes                // generic byte encoding
)

// newGroupIndex picks the lookup strategy from the declared key types.
func newGroupIndex(types []vector.Type) *groupIndex {
	gi := &groupIndex{nullID: -1}
	switch {
	case len(types) == 0:
		gi.kind = keyKindNone
	case len(types) == 1 && isFixedKeyType(types[0]):
		gi.kind = keyKindInt
		gi.fastInt = make(map[uint64]int32)
	case len(types) == 1 && types[0] == vector.String:
		gi.kind = keyKindStr
		gi.fastStr = make(map[string]int32)
	default:
		gi.kind = keyKindBytes
		gi.slow = make(map[string]int32)
	}
	return gi
}

func isFixedKeyType(t vector.Type) bool {
	return t == vector.Bool || t == vector.Int32 || t == vector.Int64
}

// fixedKeyAt folds a fixed-width key value into a uint64. Integer
// widths are sign-extended so the same number keys identically whether
// the runtime vector is Int32 or Int64.
func fixedKeyAt(v *vector.Vector, r int) (uint64, bool) {
	switch v.Type() {
	case vector.Bool:
		if v.Bools()[r] {
			return 1, true
		}
		return 0, true
	case vector.Int32:
		return uint64(int64(v.Int32s()[r])), true
	case vector.Int64:
		return uint64(v.Int64s()[r]), true
	}
	return 0, false
}

// groupID returns the dense group id for row r of the key vectors and
// whether this call created the group. Ids are assigned in first-
// appearance order.
func (gi *groupIndex) groupID(keys []*vector.Vector, r int) (int32, bool) {
	switch gi.kind {
	case keyKindNone:
		if gi.n == 0 {
			gi.n = 1
			return 0, true
		}
		return 0, false
	case keyKindInt:
		v := keys[0]
		if v.IsNull(r) {
			return gi.nullGroup()
		}
		if k, ok := fixedKeyAt(v, r); ok {
			if id, ok := gi.fastInt[k]; ok {
				return id, false
			}
			id := gi.n
			gi.n++
			gi.fastInt[k] = id
			return id, true
		}
		// Runtime type diverged from the declared key type: fall back
		// to the generic encoding (separate keyspace by construction).
	case keyKindStr:
		v := keys[0]
		if v.IsNull(r) {
			return gi.nullGroup()
		}
		if v.Type() == vector.String {
			s := v.Strings()[r]
			if id, ok := gi.fastStr[s]; ok {
				return id, false
			}
			id := gi.n
			gi.n++
			gi.fastStr[s] = id
			return id, true
		}
	}
	if gi.slow == nil {
		gi.slow = make(map[string]int32)
	}
	gi.buf = gi.buf[:0]
	for _, kv := range keys {
		gi.buf = appendRowKey(gi.buf, kv, r)
	}
	if id, ok := gi.slow[string(gi.buf)]; ok {
		return id, false
	}
	id := gi.n
	gi.n++
	gi.slow[string(gi.buf)] = id
	return id, true
}

func (gi *groupIndex) nullGroup() (int32, bool) {
	if gi.nullID >= 0 {
		return gi.nullID, false
	}
	gi.nullID = gi.n
	gi.n++
	return gi.nullID, true
}

// EvalPartitionedCall evaluates a bound UDF call over already
// evaluated argument vectors, partitioned across workers when the
// function allows it.
func EvalPartitionedCall(call *plan.Call, args []*vector.Vector, workers int) (*vector.Vector, error) {
	return core.EvalPartitioned(call.Fn, args, workers)
}
