package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vexdb/internal/vector"
)

func intChunk(vals ...int64) *vector.Chunk {
	return vector.NewChunk(vector.FromInt64s(vals))
}

func mustAppendCommit(t *testing.T, l *Log, rec *Record) uint64 {
	t.Helper()
	lsn, err := l.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	return lsn
}

func replayAll(t *testing.T, dir string) []*Record {
	t.Helper()
	l, err := Open(dir, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var recs []*Record
	if err := l.Replay(func(r *Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestRoundTripAllRecordTypes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	mustAppendCommit(t, l, &Record{Type: RecCreate, Table: "t", Cols: []ColumnDef{
		{Name: "id", Type: vector.Int64}, {Name: "name", Type: vector.String},
	}})
	mustAppendCommit(t, l, &Record{Type: RecInsert, Table: "t", Chunk: vector.NewChunk(
		vector.FromInt64s([]int64{1, 2, 3}),
		vector.FromStrings([]string{"a", "b", "c"}),
	)})
	mustAppendCommit(t, l, &Record{Type: RecTruncate, Table: "t"})
	mustAppendCommit(t, l, &Record{Type: RecReplace, Table: "t", Chunk: vector.NewChunk(
		vector.FromInt64s([]int64{9}),
		vector.FromStrings([]string{"z"}),
	)})
	mustAppendCommit(t, l, &Record{Type: RecDrop, Table: "t"})
	// CTAS: create carrying rows.
	mustAppendCommit(t, l, &Record{Type: RecCreate, Table: "u",
		Cols:  []ColumnDef{{Name: "x", Type: vector.Int64}},
		Chunk: intChunk(4, 5)})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs := replayAll(t, dir)
	if len(recs) != 6 {
		t.Fatalf("replayed %d records, want 6", len(recs))
	}
	wantTypes := []Type{RecCreate, RecInsert, RecTruncate, RecReplace, RecDrop, RecCreate}
	for i, r := range recs {
		if r.Type != wantTypes[i] {
			t.Fatalf("record %d: type %s, want %s", i, r.Type, wantTypes[i])
		}
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d: lsn %d, want %d", i, r.LSN, i+1)
		}
	}
	if got := recs[1].Chunk.NumRows(); got != 3 {
		t.Fatalf("insert chunk rows = %d", got)
	}
	if got := recs[1].Chunk.Col(1).Get(2).Str(); got != "c" {
		t.Fatalf("insert string col round trip: %q", got)
	}
	if recs[5].Chunk == nil || recs[5].Chunk.NumRows() != 2 {
		t.Fatal("CTAS chunk lost in round trip")
	}
	if len(recs[0].Cols) != 2 || recs[0].Cols[1].Name != "name" || recs[0].Cols[1].Type != vector.String {
		t.Fatalf("create schema round trip: %+v", recs[0].Cols)
	}
}

// Torn tails: truncating the file at every possible byte offset must
// yield replay of exactly the frames that fit whole, never an error.
func TestTornTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	frameEnds := []int64{0}
	for i := 0; i < 5; i++ {
		mustAppendCommit(t, l, &Record{Type: RecInsert, Table: "t", Chunk: intChunk(int64(i))})
		frameEnds = append(frameEnds, l.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, LogName)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	completeBelow := func(off int64) int {
		n := 0
		for _, end := range frameEnds[1:] {
			if end <= off {
				n++
			}
		}
		return n
	}
	for off := int64(0); off <= int64(len(full)); off++ {
		if err := os.WriteFile(path, full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		recs := replayAll(t, dir)
		if want := completeBelow(off); len(recs) != want {
			t.Fatalf("cut at %d: replayed %d records, want %d", off, len(recs), want)
		}
		// Open must have truncated to a frame boundary.
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if want := frameEnds[completeBelow(off)]; st.Size() != want {
			t.Fatalf("cut at %d: file left at %d bytes, want %d", off, st.Size(), want)
		}
	}
}

// A bit flip anywhere in a frame must stop replay at the frame before
// it (CRC) without erroring.
func TestCorruptionStopsAtBadFrame(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	for i := 0; i < 4; i++ {
		mustAppendCommit(t, l, &Record{Type: RecInsert, Table: "t", Chunk: intChunk(int64(i))})
		ends = append(ends, l.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, LogName)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside frame 3 (index 2).
	mut := append([]byte(nil), full...)
	mut[ends[1]+frameHeader+4] ^= 0xFF
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, dir)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records past corruption, want 2", len(recs))
	}
}

// Appends after a recovered torn tail must continue the LSN sequence
// and replay cleanly.
func TestAppendAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustAppendCommit(t, l, &Record{Type: RecInsert, Table: "t", Chunk: intChunk(int64(i))})
	}
	size := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, LogName)
	full, _ := os.ReadFile(path)
	// Tear half of the last frame off.
	if err := os.WriteFile(path, full[:size-5], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.LastLSN(); got != 2 {
		t.Fatalf("recovered LastLSN = %d, want 2", got)
	}
	lsn := mustAppendCommit(t, l2, &Record{Type: RecInsert, Table: "t", Chunk: intChunk(99)})
	if lsn != 3 {
		t.Fatalf("post-recovery lsn = %d, want 3", lsn)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, dir)
	if len(recs) != 3 || recs[2].Chunk.Col(0).Get(0).Int64() != 99 {
		t.Fatalf("replay after recovery: %d records", len(recs))
	}
}

func TestResetSealsLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 10; i++ {
		last = mustAppendCommit(t, l, &Record{Type: RecInsert, Table: "t", Chunk: intChunk(int64(i))})
	}
	before := l.Size()
	if err := l.Reset(last); err != nil {
		t.Fatal(err)
	}
	if l.Size() >= before {
		t.Fatalf("reset did not shrink the log: %d -> %d", before, l.Size())
	}
	// Post-reset appends continue past the checkpoint LSN.
	lsn := mustAppendCommit(t, l, &Record{Type: RecInsert, Table: "t", Chunk: intChunk(42)})
	if lsn != last+1 {
		t.Fatalf("post-reset lsn = %d, want %d", lsn, last+1)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, dir)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want checkpoint+insert", len(recs))
	}
	if recs[0].Type != RecCheckpoint || recs[0].LSN != last {
		t.Fatalf("head record = %s lsn %d, want checkpoint lsn %d", recs[0].Type, recs[0].LSN, last)
	}
	if recs[1].Type != RecInsert || recs[1].LSN != last+1 {
		t.Fatalf("tail record = %s lsn %d", recs[1].Type, recs[1].LSN)
	}
}

// Group commit under contention: all records from all goroutines must
// be durable, in strictly increasing LSN order, with no gaps.
func TestGroupCommitConcurrent(t *testing.T) {
	for _, mode := range []SyncMode{SyncGroup, SyncEach, SyncNone} {
		mode := mode
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, mode)
			if err != nil {
				t.Fatal(err)
			}
			const writers, perWriter = 8, 50
			var wg sync.WaitGroup
			errs := make(chan error, writers)
			for w := 0; w < writers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						lsn, err := l.Append(&Record{Type: RecInsert, Table: "t",
							Chunk: intChunk(int64(w*perWriter + i))})
						if err != nil {
							errs <- err
							return
						}
						if err := l.Commit(lsn); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			recs := replayAll(t, dir)
			if len(recs) != writers*perWriter {
				t.Fatalf("replayed %d, want %d", len(recs), writers*perWriter)
			}
			seen := make(map[int64]bool)
			for i, r := range recs {
				if r.LSN != uint64(i+1) {
					t.Fatalf("record %d has lsn %d", i, r.LSN)
				}
				v := r.Chunk.Col(0).Get(0).Int64()
				if seen[v] {
					t.Fatalf("value %d duplicated", v)
				}
				seen[v] = true
			}
		})
	}
}

func TestEnsureNextLSN(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.EnsureNextLSN(41)
	lsn, err := l.Append(&Record{Type: RecInsert, Table: "t", Chunk: intChunk(1)})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 42 {
		t.Fatalf("lsn = %d, want 42", lsn)
	}
}

func TestParseSyncMode(t *testing.T) {
	for s, want := range map[string]SyncMode{
		"": SyncGroup, "group": SyncGroup, "each": SyncEach, "none": SyncNone, "async": SyncNone,
	} {
		got, err := ParseSyncMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}
