package wal

import (
	"encoding/binary"
	"fmt"

	"vexdb/internal/storage"
	"vexdb/internal/vector"
)

// Type tags one logical write operation in the log.
type Type uint8

const (
	// RecCreate registers a table (schema, and for CTAS optionally its
	// initial rows in the same record, so a crash can never leave the
	// statement half-applied).
	RecCreate Type = 1
	// RecInsert appends a chunk of rows to a table. One INSERT
	// statement produces exactly one record, whatever its row count.
	RecInsert Type = 2
	// RecTruncate removes all rows of a table, keeping the schema.
	RecTruncate Type = 3
	// RecDrop removes a table.
	RecDrop Type = 4
	// RecReplace atomically substitutes a table's entire contents with
	// the record's chunk (copy-on-delete DELETE/UPDATE rewrites).
	RecReplace Type = 5
	// RecCheckpoint marks a durable checkpoint: every record at or
	// before its LSN is captured by the checkpoint's table files, and a
	// freshly sealed (truncated) log begins with one.
	RecCheckpoint Type = 6
)

func (t Type) String() string {
	switch t {
	case RecCreate:
		return "create"
	case RecInsert:
		return "insert"
	case RecTruncate:
		return "truncate"
	case RecDrop:
		return "drop"
	case RecReplace:
		return "replace"
	case RecCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// ColumnDef is one column of a RecCreate schema.
type ColumnDef struct {
	Name string
	Type vector.Type
}

// Record is one logical operation. LSN is assigned by Log.Append.
type Record struct {
	LSN   uint64
	Type  Type
	Table string
	// Cols carries the schema of a RecCreate.
	Cols []ColumnDef
	// Chunk carries the rows of RecInsert/RecReplace and optionally of
	// a CTAS RecCreate. Columns use the raw storage payload encoding
	// (storage.EncodeColumn), the same layout as disk segments and
	// wire chunk frames.
	Chunk *vector.Chunk
}

// maxFramePayload bounds one record's payload; anything larger in the
// file is treated as corruption (a torn or overwritten length field).
const maxFramePayload = 1 << 30

// encodePayload serializes the record body (everything the frame CRC
// covers).
func encodePayload(r *Record) ([]byte, error) {
	out := binary.LittleEndian.AppendUint64(nil, r.LSN)
	out = append(out, byte(r.Type))
	switch r.Type {
	case RecCheckpoint:
		return out, nil
	case RecTruncate, RecDrop:
		return appendString16(out, r.Table), nil
	case RecInsert, RecReplace:
		out = appendString16(out, r.Table)
		return appendChunk(out, r.Chunk)
	case RecCreate:
		out = appendString16(out, r.Table)
		out = binary.LittleEndian.AppendUint16(out, uint16(len(r.Cols)))
		for _, c := range r.Cols {
			out = appendString16(out, c.Name)
			out = append(out, byte(c.Type))
		}
		if r.Chunk == nil || r.Chunk.NumRows() == 0 {
			return append(out, 0), nil
		}
		out = append(out, 1)
		return appendChunk(out, r.Chunk)
	}
	return nil, fmt.Errorf("wal: encode record of unknown type %d", r.Type)
}

func appendString16(out []byte, s string) []byte {
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s)))
	return append(out, s...)
}

func appendChunk(out []byte, ch *vector.Chunk) ([]byte, error) {
	if ch == nil {
		return nil, fmt.Errorf("wal: record carries no chunk")
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(ch.NumRows()))
	out = binary.LittleEndian.AppendUint16(out, uint16(ch.NumCols()))
	for i := 0; i < ch.NumCols(); i++ {
		col := ch.Col(i)
		payload, err := storage.EncodeColumn(col)
		if err != nil {
			return nil, fmt.Errorf("wal: column %d: %w", i, err)
		}
		out = append(out, byte(col.Type()))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
		out = append(out, payload...)
	}
	return out, nil
}

// decodePayload parses one record body. Decoding is strict: truncated
// or trailing bytes are corruption, never best-effort.
func decodePayload(p []byte) (*Record, error) {
	d := &decoder{buf: p}
	r := &Record{LSN: d.u64(), Type: Type(d.u8())}
	switch r.Type {
	case RecCheckpoint:
	case RecTruncate, RecDrop:
		r.Table = d.str16()
	case RecInsert, RecReplace:
		r.Table = d.str16()
		r.Chunk = d.chunk()
	case RecCreate:
		r.Table = d.str16()
		ncols := int(d.u16())
		if d.err == nil && ncols > 1<<12 {
			d.err = fmt.Errorf("implausible column count %d", ncols)
		}
		for i := 0; i < ncols && d.err == nil; i++ {
			r.Cols = append(r.Cols, ColumnDef{Name: d.str16(), Type: vector.Type(d.u8())})
		}
		if d.u8() == 1 {
			r.Chunk = d.chunk()
		}
	default:
		return nil, fmt.Errorf("wal: record type %d unknown", r.Type)
	}
	if d.err != nil {
		return nil, fmt.Errorf("wal: decode %s record: %w", r.Type, d.err)
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("wal: %s record has %d trailing bytes", r.Type, len(d.buf)-d.off)
	}
	return r, nil
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("truncated at byte %d", d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) str16() string {
	n := int(d.u16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *decoder) chunk() *vector.Chunk {
	nrows := int(d.u32())
	ncols := int(d.u16())
	if d.err != nil {
		return nil
	}
	if nrows > maxFramePayload || ncols > 1<<12 {
		d.err = fmt.Errorf("implausible chunk %d rows x %d cols", nrows, ncols)
		return nil
	}
	cols := make([]*vector.Vector, ncols)
	for i := range cols {
		t := vector.Type(d.u8())
		plen := int(d.u32())
		payload := d.take(plen)
		if d.err != nil {
			return nil
		}
		col, err := storage.DecodeColumn(t, nrows, payload)
		if err != nil {
			d.err = fmt.Errorf("column %d: %w", i, err)
			return nil
		}
		cols[i] = col
	}
	return vector.NewChunk(cols...)
}
