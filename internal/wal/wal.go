// Package wal implements a per-database write-ahead log. Writes are
// logged before they apply, so a crash mid-statement loses at most
// unacknowledged work and replay restores exactly the committed
// prefix.
//
// Framing: every record is [len uint32][crc uint32][payload], both
// little-endian, where crc is CRC-32C (Castagnoli) over the payload
// and the payload begins with the record's LSN. Replay stops at the
// first frame that is truncated, oversized, or fails its checksum —
// a torn tail from a crash mid-write — and Open truncates the file
// there, so the log is always frame-aligned for new appends.
//
// Commit durability is group-committed: Append assigns an LSN and
// buffers the frame under a short critical section; Commit(lsn) then
// elects the first waiter as leader, which writes and fsyncs every
// frame buffered so far in one batch while later committers queue up
// for the next round. N concurrent writers therefore share fsyncs
// instead of paying one each, which is where the multi-writer INSERT
// throughput comes from (BENCH_wal.json).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
)

// SyncMode selects the durability/latency trade-off of Commit.
type SyncMode int

const (
	// SyncGroup (the default) fsyncs once per group-commit batch:
	// every Commit returns only after its record is on stable storage,
	// and concurrent committers share the fsync.
	SyncGroup SyncMode = iota
	// SyncEach fsyncs every record individually inside Append, with no
	// batching. It exists as the per-statement-fsync baseline the
	// group-commit benchmark compares against.
	SyncEach
	// SyncNone writes records to the OS buffer cache on Commit but
	// never fsyncs there; the log is synced only at checkpoints and
	// Close. An OS crash can lose the un-synced suffix (replay still
	// restores a clean prefix).
	SyncNone
)

// ParseSyncMode maps the CLI spellings to a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "", "group", "always", "full":
		return SyncGroup, nil
	case "each", "statement":
		return SyncEach, nil
	case "none", "async", "off":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync mode %q (want group, each or none)", s)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// LogName is the log's file name inside its directory.
const LogName = "wal.log"

const frameHeader = 8 // len + crc

// Log is an append-only record log. Append/Commit/Sync are safe for
// concurrent use; Replay and Reset belong to the (single-threaded)
// open and checkpoint paths.
type Log struct {
	dir  string
	mode SyncMode

	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File
	buf     []byte // appended frames not yet written to the file
	nextLSN uint64 // next LSN to assign
	durable uint64 // highest LSN written (and, per mode, fsynced)
	syncing bool   // a group-commit leader is writing outside mu
	err     error  // sticky I/O failure: the log is dead once set
	size    int64  // file bytes plus buffered bytes

	validEnd int64  // frame-aligned end of the replayable region
	maxLSN   uint64 // highest LSN among valid frames at open

	// commit-batching observables
	syncs   atomic.Int64 // fsync calls issued for commits
	commits atomic.Int64 // records made durable by those fsyncs
}

// Open opens (creating if needed) the log in dir, scans it for the
// last valid frame, and truncates any torn tail so the file ends
// frame-aligned. Records already in the log are not applied — call
// Replay for that.
func Open(dir string, mode SyncMode) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, LogName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, mode: mode, f: f}
	l.cond = sync.NewCond(&l.mu)
	if err := l.scan(); err != nil {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() > l.validEnd {
		// Torn tail: a crash cut a frame short. Drop it so appends
		// start frame-aligned.
		if err := f.Truncate(l.validEnd); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(l.validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.size = l.validEnd
	l.nextLSN = l.maxLSN + 1
	l.durable = l.maxLSN
	return l, nil
}

// scan walks the frames, validating length and checksum, and records
// the end offset of the valid prefix plus the highest LSN in it. LSNs
// must be strictly increasing; a decrease means the frame is stale or
// corrupt and ends the valid region.
func (l *Log) scan() error {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var off int64
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(l.f, hdr[:]); err != nil {
			break // clean EOF or torn header: valid region ends here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxFramePayload {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(l.f, payload); err != nil {
			break
		}
		if crc32.Checksum(payload, crcTable) != sum {
			break
		}
		if len(payload) < 8 {
			break
		}
		lsn := binary.LittleEndian.Uint64(payload[:8])
		if lsn <= l.maxLSN {
			break
		}
		l.maxLSN = lsn
		off += frameHeader + int64(n)
	}
	l.validEnd = off
	return nil
}

// Replay re-reads the valid region and calls fn for every record in
// LSN order. It must run before the first Append.
func (l *Log) Replay(fn func(*Record) error) error {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := io.LimitReader(l.f, l.validEnd)
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		rec, err := decodePayload(payload)
		if err != nil {
			// The frame passed its CRC, so this is a format error, not
			// a torn write: surface it rather than silently dropping
			// committed data.
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	_, err := l.f.Seek(l.validEnd, io.SeekStart)
	return err
}

// EnsureNextLSN raises the next LSN to assign to at least lsn+1 (used
// after reading a checkpoint manifest newer than the log's contents).
func (l *Log) EnsureNextLSN(lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn >= l.nextLSN {
		l.nextLSN = lsn + 1
		if l.durable < lsn {
			l.durable = lsn
		}
	}
}

// Append assigns the record its LSN and buffers its frame. The record
// is not durable (and with SyncGroup not even written) until a
// Commit at or past the returned LSN returns; callers must not
// acknowledge the write before then. With SyncEach the record is
// written and fsynced before Append returns.
func (l *Log) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	rec.LSN = l.nextLSN
	payload, err := encodePayload(rec)
	if err != nil {
		return 0, err
	}
	l.nextLSN++
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	l.size += int64(frameHeader + len(payload))
	if l.mode == SyncEach {
		// Per-record durability, serialized under the lock: write and
		// fsync this statement alone (the group-commit baseline).
		for l.syncing {
			l.cond.Wait()
		}
		if err := l.flushLocked(true); err != nil {
			return 0, err
		}
		l.syncs.Add(1)
		l.commits.Add(1)
	}
	return rec.LSN, nil
}

// Commit blocks until every record up to lsn is durable (SyncGroup),
// written to the OS (SyncNone), or already synced (SyncEach). The
// first committer of a round becomes the leader and writes+fsyncs the
// whole buffer; committers arriving during the fsync batch into the
// next round.
func (l *Log) Commit(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.durable >= lsn {
			return nil
		}
		if l.err != nil {
			return l.err
		}
		if !l.syncing {
			l.syncing = true
			// Let writers that just woke from the previous broadcast
			// re-append before the batch is captured (commit_delay in
			// miniature): the new leader is usually the first waker, and
			// capturing instantly would sync a near-empty batch while
			// the herd is still queued on mu. Yield until the buffer
			// stops growing between peeks.
			for {
				n := len(l.buf)
				l.mu.Unlock()
				runtime.Gosched()
				l.mu.Lock()
				if len(l.buf) == n || l.err != nil {
					break
				}
			}
			buf := l.buf
			l.buf = nil
			high := l.nextLSN - 1
			l.mu.Unlock()
			var err error
			if len(buf) > 0 {
				_, err = l.f.Write(buf)
			}
			if err == nil && l.mode == SyncGroup {
				err = l.f.Sync()
				l.syncs.Add(1)
			}
			l.mu.Lock()
			l.syncing = false
			if err != nil {
				l.err = err
			} else if high > l.durable {
				l.commits.Add(int64(high - l.durable))
				l.durable = high
			}
			l.cond.Broadcast()
			continue
		}
		l.cond.Wait()
	}
}

// flushLocked writes the buffer and optionally fsyncs. Caller holds
// mu with no leader in flight.
func (l *Log) flushLocked(sync bool) error {
	if l.err != nil {
		return l.err
	}
	if len(l.buf) > 0 {
		if _, err := l.f.Write(l.buf); err != nil {
			l.err = err
			return err
		}
		l.buf = nil
	}
	if sync {
		if err := l.f.Sync(); err != nil {
			l.err = err
			return err
		}
	}
	if l.nextLSN > 0 && l.nextLSN-1 > l.durable {
		l.durable = l.nextLSN - 1
	}
	return nil
}

// Sync flushes all buffered frames and fsyncs, whatever the mode
// (checkpoints and Close call it).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		l.cond.Wait()
	}
	return l.flushLocked(true)
}

// Reset seals the log at a checkpoint: the file is truncated to empty
// and re-seeded with a single RecCheckpoint frame carrying
// checkpointLSN, then fsynced. Every record at or before
// checkpointLSN must already be captured by the checkpoint's table
// files. Concurrent appenders must be quiesced by the caller.
func (l *Log) Reset(checkpointLSN uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	l.buf = nil
	if err := l.f.Truncate(0); err != nil {
		l.err = err
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.err = err
		return err
	}
	payload, err := encodePayload(&Record{LSN: checkpointLSN, Type: RecCheckpoint})
	if err != nil {
		return err
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	frame := append(hdr[:], payload...)
	if _, err := l.f.Write(frame); err != nil {
		l.err = err
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return err
	}
	l.size = int64(len(frame))
	if checkpointLSN >= l.nextLSN {
		l.nextLSN = checkpointLSN + 1
	}
	if l.durable < l.nextLSN-1 {
		l.durable = l.nextLSN - 1
	}
	return nil
}

// GroupStats reports the commit fsyncs issued and the records they
// made durable; commits/syncs is the effective group-commit batch
// size (SyncEach counts each inline fsync as a batch of one).
func (l *Log) GroupStats() (syncs, commits int64) {
	return l.syncs.Load(), l.commits.Load()
}

// LastLSN returns the highest assigned LSN (0 when none).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Size returns the log's current size in bytes, buffered frames
// included (callers use it to decide when to checkpoint).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes, fsyncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		l.cond.Wait()
	}
	flushErr := l.flushLocked(true)
	closeErr := l.f.Close()
	if l.err == nil {
		l.err = fmt.Errorf("wal: log closed")
	}
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
