package vexdb

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// The crash harness re-execs the test binary as a writer child
// (guarded by this env var), kills it with SIGKILL mid-INSERT, and
// asserts recovery restores exactly a committed prefix.
const crashChildEnv = "VEXDB_CRASH_CHILD"

func TestMain(m *testing.M) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		crashChildMain(dir)
		return
	}
	os.Exit(m.Run())
}

// crashChildMain is the writer process: it opens the durable database
// in dir, creates the table, then INSERTs rows with consecutive
// sequence numbers, printing "ack <n>" only after each statement's
// commit returned — i.e. after its WAL record is durable. It never
// exits on its own; the parent kills it.
func crashChildMain(dir string) {
	db, err := OpenDurable(Options{WALDir: dir})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child open: %v\n", err)
		os.Exit(1)
	}
	if _, err := db.Exec("CREATE TABLE IF NOT EXISTS crashlog (seq BIGINT, payload VARCHAR)"); err != nil {
		fmt.Fprintf(os.Stderr, "child create: %v\n", err)
		os.Exit(1)
	}
	// Resume after the committed prefix so repeated crash rounds keep
	// extending one sequence.
	start := db.NumRows("crashlog")
	out := bufio.NewWriter(os.Stdout)
	for seq := start; ; seq++ {
		stmt := fmt.Sprintf("INSERT INTO crashlog VALUES (%d, 'row-%d')", seq, seq)
		if _, err := db.Exec(stmt); err != nil {
			fmt.Fprintf(os.Stderr, "child insert %d: %v\n", seq, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "ack %d\n", seq)
		out.Flush()
	}
}

// spawnCrashChild starts the writer, waits until it acked at least
// minAcks inserts, lets it run a little longer (so the kill lands at a
// randomized offset, possibly mid-append), then SIGKILLs it. Returns
// the highest acked sequence number.
func spawnCrashChild(t *testing.T, dir string, minAcks int, rng *rand.Rand) int {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	acks := make(chan int, 1024)
	go func() {
		defer close(acks)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			var seq int
			if _, err := fmt.Sscanf(sc.Text(), "ack %d", &seq); err == nil {
				acks <- seq
			}
		}
	}()

	lastAck := -1
	deadline := time.After(30 * time.Second)
	for n := 0; n < minAcks; {
		select {
		case seq, ok := <-acks:
			if !ok {
				t.Fatal("crash child exited before acking enough inserts")
			}
			lastAck = seq
			n++
		case <-deadline:
			cmd.Process.Kill()
			t.Fatal("timeout waiting for child acks")
		}
	}
	// Randomized extra running time: the SIGKILL lands at an arbitrary
	// point of an in-flight statement — possibly mid WAL append, mid
	// fsync, or between append and ack.
	time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reaps; exit status is the signal, ignore it
	// Drain any acks buffered before the kill.
	for seq := range acks {
		lastAck = seq
	}
	return lastAck
}

// assertCommittedPrefix opens the database after a crash and checks
// crashlog holds exactly the rows 0..m-1 for some m > lastAck: every
// acknowledged insert survived, nothing is torn, no row is duplicated
// or skipped. Returns m.
func assertCommittedPrefix(t *testing.T, dir string, lastAck int) int {
	t.Helper()
	db, err := OpenDurable(Options{WALDir: dir})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer db.Close()
	tab, err := db.Query("SELECT seq, payload FROM crashlog ORDER BY seq")
	if err != nil {
		t.Fatalf("post-crash table unreadable: %v", err)
	}
	m := tab.NumRows()
	if m <= lastAck {
		t.Fatalf("recovered %d rows, lost acknowledged inserts (last ack %d)", m, lastAck)
	}
	seqs := tab.Cols[0].Int64s()
	for i := 0; i < m; i++ {
		if seqs[i] != int64(i) {
			t.Fatalf("row %d has seq %d: recovered set is not a contiguous prefix", i, seqs[i])
		}
		if want := fmt.Sprintf("row-%d", i); tab.Cols[1].Get(i).Str() != want {
			t.Fatalf("row %d payload %q, want %q", i, tab.Cols[1].Get(i).Str(), want)
		}
	}
	return m
}

// TestCrashRecoveryKill9 kills a writer process with SIGKILL at
// randomized offsets mid-INSERT, several rounds against the same WAL
// directory, asserting after every crash that recovery yields exactly
// the committed prefix — never a lost ack, never a torn row.
func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	prevRows := 0
	for round := 0; round < 3; round++ {
		lastAck := spawnCrashChild(t, dir, 50+rng.Intn(100), rng)
		if lastAck < prevRows {
			t.Fatalf("round %d: child acked only to %d, below prior recovery %d", round, lastAck, prevRows)
		}
		m := assertCommittedPrefix(t, dir, lastAck)
		t.Logf("round %d: acked to seq %d, recovered %d rows", round, lastAck, m)
		prevRows = m
	}
}

// TestCrashRecoveryAfterCheckpoint crashes a writer whose history
// spans a checkpoint: recovery must stitch checkpoint tables and log
// suffix back together.
func TestCrashRecoveryAfterCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))
	lastAck := spawnCrashChild(t, dir, 60, rng)
	m := assertCommittedPrefix(t, dir, lastAck)

	// Checkpoint in the parent, then run (and kill) another writer so
	// the log holds only post-checkpoint records.
	db, err := OpenDurable(Options{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	lastAck2 := spawnCrashChild(t, dir, 40, rng)
	if lastAck2 < m {
		t.Fatalf("second child started below checkpointed prefix: %d < %d", lastAck2, m)
	}
	assertCommittedPrefix(t, dir, lastAck2)
}

func TestDurableReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(Options{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	script := `
		CREATE TABLE kv (k BIGINT, v VARCHAR);
		INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three');
		DELETE FROM kv WHERE k = 2;
		UPDATE kv SET v = 'ONE' WHERE k = 1;
		CREATE TABLE doomed (x BIGINT);
		DROP TABLE doomed;
		CREATE TABLE copied AS SELECT k FROM kv;
	`
	if _, err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurable(Options{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	tab, err := re.Query("SELECT k, v FROM kv ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 || tab.Cols[1].Get(0).Str() != "ONE" || tab.Cols[0].Get(1).Int64() != 3 {
		t.Fatalf("recovered kv wrong: %d rows", tab.NumRows())
	}
	if re.HasTable("doomed") {
		t.Fatal("dropped table resurrected by replay")
	}
	if n := re.NumRows("copied"); n != 2 {
		t.Fatalf("CTAS table recovered %d rows, want 2", n)
	}
}

// A checkpoint must shrink the log and leave the database reopenable
// from checkpoint tables alone plus an (almost) empty log.
func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(Options{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE big (x BIGINT, s VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO big VALUES (%d, 'padding-padding-%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	before := db.Engine().WALSize()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := db.Engine().WALSize()
	if after >= before {
		t.Fatalf("checkpoint did not truncate the log: %d -> %d bytes", before, after)
	}
	// More writes after the checkpoint land in the fresh log.
	if _, err := db.Exec("INSERT INTO big VALUES (50, 'after-checkpoint')"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(Options{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n := re.NumRows("big"); n != 51 {
		t.Fatalf("recovered %d rows, want 51", n)
	}
	// Exactly one checkpoint directory remains.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, e := range entries {
		if e.IsDir() {
			ckpts++
		}
	}
	if ckpts != 1 {
		t.Fatalf("%d checkpoint directories left, want 1", ckpts)
	}
}

// CreateTableFrom (the bulk-load fast path) must be durable too.
func TestCreateTableFromDurable(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(Options{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable([]string{"x"}, []*Vector{NewVectorInt64([]int64{7, 8, 9})})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTableFrom("bulk", tab); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(Options{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n := re.NumRows("bulk"); n != 3 {
		t.Fatalf("bulk-loaded table recovered %d rows, want 3", n)
	}
}

func TestSyncModesAllRecover(t *testing.T) {
	for name, mode := range map[string]SyncMode{"group": SyncGroup, "each": SyncEach, "none": SyncNone} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "wal")
			db, err := OpenDurable(Options{WALDir: dir, SyncMode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.ExecScript("CREATE TABLE t (x BIGINT); INSERT INTO t VALUES (1), (2)"); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := OpenDurable(Options{WALDir: dir, SyncMode: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if n := re.NumRows("t"); n != 2 {
				t.Fatalf("mode %s recovered %d rows", name, n)
			}
		})
	}
}

func TestTruncateResetsStatistics(t *testing.T) {
	db := Open()
	// Enough rows to seal segments so sketches exist.
	vals := make([]int64, 3*2048)
	for i := range vals {
		vals[i] = int64(i)
	}
	tb, err := NewTable([]string{"x"}, []*Vector{NewVectorInt64(vals)})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTableFrom("s", tb); err != nil {
		t.Fatal(err)
	}
	tab, err := db.Engine().Catalog().Table("s")
	if err != nil {
		t.Fatal(err)
	}
	before := tab.Data.ColumnStatistics()
	if before[0].Distinct == 0 {
		t.Fatal("test needs sealed sketches before truncate")
	}
	if _, err := db.Exec("DELETE FROM s"); err != nil {
		t.Fatal(err)
	}
	after := tab.Data.ColumnStatistics()
	if after[0].Distinct != 0 || after[0].StatsRows != 0 || after[0].SketchRows != 0 {
		t.Fatalf("stale statistics after truncate: %+v", after[0])
	}
	if after[0].HasMinMax {
		t.Fatalf("stale min/max bounds after truncate: %+v", after[0])
	}
}
