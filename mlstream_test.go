package vexdb

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"

	"vexdb/internal/vector"
	"vexdb/ml"
)

// mlStreamData builds n rows of deterministic synthetic voter-style
// data. f1 carries NaN at every 97th row and f2 is SQL NULL (with a
// NaN payload underneath) at every 131st row, so every test below
// exercises the missing-value paths the tree/NB/logreg models define
// semantics for.
func mlStreamData(n int) (id []int64, f0, f1, f2 []float64, label []int32) {
	id = make([]int64, n)
	f0 = make([]float64, n)
	f1 = make([]float64, n)
	f2 = make([]float64, n)
	label = make([]int32, n)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		id[i] = int64(i)
		f0[i] = next()*10 - 5
		f1[i] = next()*4 - 2
		f2[i] = next()
		switch {
		case f0[i]+f1[i] > 1.5:
			label[i] = 2
		case f0[i] > 0:
			label[i] = 1
		}
		if i%97 == 0 {
			f1[i] = math.NaN()
		}
		if i%131 == 0 {
			f2[i] = math.NaN()
		}
	}
	return
}

// newMLStreamDB creates a database with a "pts" table of n rows and a
// single-row "m" table holding a decision tree trained on the first
// min(n, 2000) rows.
func newMLStreamDB(t testing.TB, n int) *DB {
	t.Helper()
	db := Open()
	id, f0, f1, f2, label := mlStreamData(n)
	vf2 := NewVectorFloat64(f2)
	for i := 0; i < n; i += 131 {
		vf2.SetNull(i)
	}
	tab, err := NewTable(
		[]string{"id", "f0", "f1", "f2", "label"},
		[]*Vector{NewVectorInt64(id), NewVectorFloat64(f0), NewVectorFloat64(f1), vf2, NewVectorInt32(label)},
	)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if err := db.CreateTableFrom("pts", tab); err != nil {
		t.Fatalf("CreateTableFrom: %v", err)
	}
	trainN := n
	if trainN > 2000 {
		trainN = 2000
	}
	stmt := fmt.Sprintf(
		`CREATE TABLE m AS SELECT model FROM train_tree((SELECT f0, f1, f2, label FROM pts WHERE id < %d), 8)`, trainN)
	if _, err := db.Exec(stmt); err != nil {
		t.Fatalf("train model: %v", err)
	}
	return db
}

// registerSerialPredict installs predict_serial: a non-Parallel UDF
// reproducing the pre-streaming prediction path — fresh deserialization
// on every call, row-at-a-time scoring. Because it is not marked
// Parallel, the planner routes it through udfProjectOp's
// materialize-then-evaluate path, giving the differential baseline for
// the streamed operator.
func registerSerialPredict(t testing.TB, db *DB) {
	t.Helper()
	err := db.RegisterScalar(&ScalarFunc{
		Name:       "predict_serial",
		Arity:      -1,
		ReturnType: FixedReturn(Int32),
		Parallel:   false,
		Eval: func(args []*Vector) (*Vector, error) {
			if len(args) < 2 {
				return nil, fmt.Errorf("predict_serial: requires (model, feature...)")
			}
			blob := args[0].Blobs()[0]
			// Copy the blob so the model cache's pointer-identity ring
			// cannot serve this call: this path must deserialize.
			clf, err := ml.Unmarshal(append([]byte(nil), blob...))
			if err != nil {
				return nil, err
			}
			X := make([][]float64, len(args)-1)
			for i, a := range args[1:] {
				col, err := a.AsFloat64s()
				if err != nil {
					return nil, err
				}
				X[i] = col
			}
			y, err := clf.Predict(X)
			if err != nil {
				return nil, err
			}
			out := make([]int32, len(y))
			for i, v := range y {
				out[i] = int32(v)
			}
			return NewVectorInt32(out), nil
		},
	})
	if err != nil {
		t.Fatalf("RegisterScalar: %v", err)
	}
}

func queryInt32Col(t *testing.T, db *DB, sql string) []int32 {
	t.Helper()
	tab, err := db.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	col, err := tab.Cols[0].AsInt32s()
	if err != nil {
		t.Fatalf("column of %q: %v", sql, err)
	}
	return col
}

func queryFloat64Col(t *testing.T, db *DB, sql string) []float64 {
	t.Helper()
	tab, err := db.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	col, err := tab.Cols[0].AsFloat64s()
	if err != nil {
		t.Fatalf("column of %q: %v", sql, err)
	}
	return col
}

// TestStreamedPredictMatchesDrained is the tentpole differential: the
// streaming vectorized predict must be byte-identical (labels exact,
// confidences bit-equal) to the drained, freshly-deserializing serial
// path, at every worker count, over data with NaN and NULL features.
func TestStreamedPredictMatchesDrained(t *testing.T) {
	db := newMLStreamDB(t, 20000)
	registerSerialPredict(t, db)

	wantLabels := queryInt32Col(t, db, `SELECT predict_serial(model, f0, f1, f2) FROM pts, m`)
	if len(wantLabels) != 20000 {
		t.Fatalf("baseline rows = %d, want 20000", len(wantLabels))
	}
	db.SetParallelism(1)
	wantConf := queryFloat64Col(t, db, `SELECT predict_confidence(model, f0, f1, f2) FROM pts, m`)

	for _, w := range []int{1, 2, 8} {
		db.SetParallelism(w)
		got := queryInt32Col(t, db, `SELECT predict(model, f0, f1, f2) FROM pts, m`)
		if len(got) != len(wantLabels) {
			t.Fatalf("workers=%d: rows = %d, want %d", w, len(got), len(wantLabels))
		}
		for i := range got {
			if got[i] != wantLabels[i] {
				t.Fatalf("workers=%d row %d: streamed label %d != serial %d", w, i, got[i], wantLabels[i])
			}
		}
		conf := queryFloat64Col(t, db, `SELECT predict_confidence(model, f0, f1, f2) FROM pts, m`)
		for i := range conf {
			if math.Float64bits(conf[i]) != math.Float64bits(wantConf[i]) {
				t.Fatalf("workers=%d row %d: confidence %v != %v", w, i, conf[i], wantConf[i])
			}
		}
	}
}

// TestStreamedPredictChunkInvariant asserts the streamed path emits
// standard-sized chunks on the wire: every chunk a consumer observes
// has between 1 and DefaultChunkSize rows, and the total row count is
// exact even when the input is not a chunk-size multiple.
func TestStreamedPredictChunkInvariant(t *testing.T) {
	n := 3*vector.DefaultChunkSize + 5
	db := newMLStreamDB(t, n)
	rows, err := db.QueryStream(`SELECT predict(model, f0, f1, f2) FROM pts, m`)
	if err != nil {
		t.Fatalf("QueryStream: %v", err)
	}
	defer rows.Close()
	total, nchunks := 0, 0
	for {
		tab, err := rows.NextTable()
		if err != nil {
			t.Fatalf("NextTable: %v", err)
		}
		if tab == nil {
			break
		}
		r := tab.NumRows()
		if r < 1 || r > vector.DefaultChunkSize {
			t.Fatalf("chunk %d has %d rows, want 1..%d", nchunks, r, vector.DefaultChunkSize)
		}
		total += r
		nchunks++
	}
	if total != n {
		t.Fatalf("streamed %d rows, want %d", total, n)
	}
	if nchunks < 4 {
		t.Fatalf("expected >= 4 chunks for %d rows, got %d", n, nchunks)
	}
}

// evalProbe records, race-safely, how many rows each Eval call of a
// pass-through UDF observes.
type evalProbe struct {
	mu      sync.Mutex
	calls   int
	maxRows int
	total   int64
}

func (p *evalProbe) observe(n int) {
	p.mu.Lock()
	p.calls++
	if n > p.maxRows {
		p.maxRows = n
	}
	p.total += int64(n)
	p.mu.Unlock()
}

func (p *evalProbe) reset() {
	p.mu.Lock()
	p.calls, p.maxRows, p.total = 0, 0, 0
	p.mu.Unlock()
}

func (p *evalProbe) snapshot() (calls, maxRows int, total int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls, p.maxRows, p.total
}

func registerProbe(t *testing.T, db *DB, name string, typ Type, probe *evalProbe) {
	t.Helper()
	err := db.RegisterScalar(&ScalarFunc{
		Name:       name,
		Arity:      1,
		ReturnType: FixedReturn(typ),
		Parallel:   true,
		Eval: func(args []*Vector) (*Vector, error) {
			probe.observe(args[0].Len())
			return args[0], nil
		},
	})
	if err != nil {
		t.Fatalf("RegisterScalar(%s): %v", name, err)
	}
}

// TestStreamedPredictBoundedEvals is the O(chunk) proof: wrapping
// predict in a counting pass-through shows no single UDF invocation
// ever sees more than DefaultChunkSize rows, at any parallelism. The
// drained path this replaced handed the entire 200k-row input (divided
// only by the worker count) to one call.
func TestStreamedPredictBoundedEvals(t *testing.T) {
	const n = 200000
	db := newMLStreamDB(t, n)
	probe := &evalProbe{}
	registerProbe(t, db, "probe_tap", Int32, probe)

	for _, w := range []int{1, 8} {
		db.SetParallelism(w)
		probe.reset()
		got := queryInt32Col(t, db, `SELECT probe_tap(predict(model, f0, f1, f2)) FROM pts, m`)
		if len(got) != n {
			t.Fatalf("workers=%d: rows = %d, want %d", w, len(got), n)
		}
		calls, maxRows, total := probe.snapshot()
		if total != int64(n) {
			t.Fatalf("workers=%d: probe saw %d rows, want %d", w, total, n)
		}
		if maxRows > vector.DefaultChunkSize {
			t.Fatalf("workers=%d: one eval saw %d rows, O(chunk) bound is %d (calls=%d)",
				w, maxRows, vector.DefaultChunkSize, calls)
		}
	}
}

// TestStreamedPredictLimitEarlyExit asserts LIMIT stops the scan
// early: only a bounded prefix of the input is ever scored.
func TestStreamedPredictLimitEarlyExit(t *testing.T) {
	const n = 200000
	db := newMLStreamDB(t, n)
	probe := &evalProbe{}
	registerProbe(t, db, "probe_tap", Int32, probe)
	pass := &evalProbe{}
	registerProbe(t, db, "probe_pass", Float64, pass)

	// Serial streaming path (join above the scan): LIMIT pulls whole
	// chunks one at a time, so at most a few chunks are scored.
	db.SetParallelism(1)
	got := queryInt32Col(t, db, `SELECT probe_tap(predict(model, f0, f1, f2)) FROM pts, m LIMIT 10`)
	if len(got) != 10 {
		t.Fatalf("LIMIT 10 returned %d rows", len(got))
	}
	_, _, total := probe.snapshot()
	if total > 3*int64(vector.DefaultChunkSize) {
		t.Fatalf("serial LIMIT 10 scored %d rows, want <= %d", total, 3*vector.DefaultChunkSize)
	}

	// Morsel-parallel path (UDF directly over the base scan): the
	// ordered driver's run-ahead window bounds wasted work, so far
	// fewer rows than the input are evaluated before the abort.
	db.SetParallelism(8)
	gotF := queryFloat64Col(t, db, `SELECT probe_pass(f0) FROM pts LIMIT 10`)
	if len(gotF) != 10 {
		t.Fatalf("parallel LIMIT 10 returned %d rows", len(gotF))
	}
	_, _, ptotal := pass.snapshot()
	if ptotal > int64(n)/2 {
		t.Fatalf("parallel LIMIT 10 scored %d of %d rows; early exit not engaged", ptotal, n)
	}
}

// TestStreamedPredictUnderMemoryBudget runs PREDICT over 200k rows
// with a 4MB memory budget. The streamed operator holds O(chunk)
// state, so the query must complete without any out-of-core spilling
// and produce the same answer as the unbudgeted run.
func TestStreamedPredictUnderMemoryBudget(t *testing.T) {
	const n = 200000
	db := newMLStreamDB(t, n)

	baseline := queryInt32Col(t, db, `SELECT predict(model, f0, f1, f2) FROM pts, m`)
	var wantSum int64
	for _, v := range baseline {
		wantSum += int64(v)
	}

	db.SetMemoryBudget(4 << 20)
	rows, err := db.QueryStream(`SELECT predict(model, f0, f1, f2) FROM pts, m`)
	if err != nil {
		t.Fatalf("QueryStream: %v", err)
	}
	defer rows.Close()
	var sum int64
	count := 0
	for rows.Next() {
		sum += rows.Value(0).Int64()
		count++
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("stream: %v", err)
	}
	parts, runs, wr, rd := rows.SpillStats()
	if parts != 0 || runs != 0 || wr != 0 || rd != 0 {
		t.Fatalf("streamed PREDICT spilled under 4MB budget: partitions=%d runs=%d written=%d read=%d",
			parts, runs, wr, rd)
	}
	if count != n || sum != wantSum {
		t.Fatalf("budgeted run: count=%d sum=%d, want count=%d sum=%d", count, sum, n, wantSum)
	}
}

// TestTrainDeterminismAcrossParallelism trains each parallel-capable
// model through SQL at parallelism 1, 2 and 8 and requires the
// serialized blobs to be byte-identical: morsel partials and per-tree
// seeds are defined by absolute position, not worker layout.
func TestTrainDeterminismAcrossParallelism(t *testing.T) {
	db := newMLStreamDB(t, 6000)
	cases := []struct {
		name string
		sql  string
	}{
		{"train_rf", `SELECT model FROM train_rf((SELECT f0, f1, f2, label FROM pts), 8, 6, 42)`},
		{"train_nb", `SELECT model FROM train_nb((SELECT f0, f1, f2, label FROM pts))`},
		{"train_logreg", `SELECT model FROM train_logreg((SELECT f0, f1, f2, label FROM pts), 60)`},
	}
	for _, tc := range cases {
		var ref []byte
		for _, w := range []int{1, 2, 8} {
			db.SetParallelism(w)
			tab, err := db.Query(tc.sql)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, w, err)
			}
			if tab.NumRows() != 1 {
				t.Fatalf("%s workers=%d: %d rows", tc.name, w, tab.NumRows())
			}
			blob := tab.Cols[0].Blobs()[0]
			if len(blob) == 0 {
				t.Fatalf("%s workers=%d: empty model blob", tc.name, w)
			}
			if ref == nil {
				ref = append([]byte(nil), blob...)
				continue
			}
			if !bytes.Equal(ref, blob) {
				t.Fatalf("%s: model at workers=%d differs from workers=1 (%d vs %d bytes)",
					tc.name, w, len(blob), len(ref))
			}
		}
	}
}

// TestPredictPopulatesModelCache asserts all predict variants route
// through the digest-verified model cache: after a predict query the
// cache holds the model, and the deprecated predict_cached alias adds
// no second entry for the same blob.
func TestPredictPopulatesModelCache(t *testing.T) {
	db := newMLStreamDB(t, 500)
	if _, err := db.Query(`SELECT predict(model, f0, f1, f2) FROM pts, m`); err != nil {
		t.Fatalf("predict: %v", err)
	}
	db.modelCache.mu.Lock()
	after := len(db.modelCache.entries)
	db.modelCache.mu.Unlock()
	if after != 1 {
		t.Fatalf("cache entries after predict = %d, want 1", after)
	}
	if _, err := db.Query(`SELECT predict_cached(model, f0, f1, f2) FROM pts, m`); err != nil {
		t.Fatalf("predict_cached: %v", err)
	}
	if _, err := db.Query(`SELECT predict_confidence(model, f0, f1, f2) FROM pts, m`); err != nil {
		t.Fatalf("predict_confidence: %v", err)
	}
	db.modelCache.mu.Lock()
	final := len(db.modelCache.entries)
	db.modelCache.mu.Unlock()
	if final != 1 {
		t.Fatalf("cache entries after all predict variants = %d, want 1 (shared cache)", final)
	}
}
