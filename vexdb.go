// Package vexdb is the public API of the vexdb analytical column
// store: an embedded, vectorized SQL engine with deeply integrated
// machine-learning pipelines, reproducing "Deep Integration of Machine
// Learning Into Column Stores" (Raasveldt et al., EDBT 2018).
//
// Data lives in columnar tables queried with SQL. Vectorized
// user-defined functions receive whole column vectors, so
// machine-learning models are trained inside the database
// (SELECT * FROM train_rf((SELECT ...), 16)), stored as BLOBs in
// ordinary tables, and applied with prediction UDFs
// (SELECT predict(model, f0, f1, ...) FROM ...), without the data ever
// leaving the process.
package vexdb

import (
	"time"

	"vexdb/internal/catalog"
	"vexdb/internal/core"
	"vexdb/internal/engine"
	"vexdb/internal/governor"
	"vexdb/internal/storage"
	"vexdb/internal/vector"
	"vexdb/internal/wal"
)

// Type identifies a SQL column type.
type Type = vector.Type

// Column types.
const (
	Bool    = vector.Bool
	Int32   = vector.Int32
	Int64   = vector.Int64
	Float64 = vector.Float64
	String  = vector.String
	Blob    = vector.Blob
)

// Value is a single dynamically typed SQL value.
type Value = vector.Value

// Vector is a typed column of values.
type Vector = vector.Vector

// Table is a materialized, named relation (query results, UDF inputs
// and outputs).
type Table = vector.Table

// Result is the outcome of executing a statement.
type Result = engine.Result

// ScalarFunc is a vectorized scalar UDF (whole column vectors in, one
// column vector out).
type ScalarFunc = core.ScalarFunc

// TableFunc is a table-valued UDF callable in FROM clauses.
type TableFunc = core.TableFunc

// TableArg is one argument passed to a table UDF.
type TableArg = core.TableArg

// ColumnDecl declares one output column of a table UDF.
type ColumnDecl = core.ColumnDecl

// FixedReturn builds a ReturnType function for a fixed output type.
func FixedReturn(t Type) func([]Type) (Type, error) { return core.FixedReturn(t) }

// NewTable builds a materialized relation from named columns (used to
// construct table UDF results).
func NewTable(names []string, cols []*Vector) (*Table, error) {
	return vector.NewTable(names, cols)
}

// NewVectorBool wraps a bool slice as a BOOLEAN column (no copy).
func NewVectorBool(v []bool) *Vector { return vector.FromBools(v) }

// NewVectorInt32 wraps an int32 slice as an INTEGER column (no copy).
func NewVectorInt32(v []int32) *Vector { return vector.FromInt32s(v) }

// NewVectorInt64 wraps an int64 slice as a BIGINT column (no copy).
func NewVectorInt64(v []int64) *Vector { return vector.FromInt64s(v) }

// NewVectorFloat64 wraps a float64 slice as a DOUBLE column (no copy).
func NewVectorFloat64(v []float64) *Vector { return vector.FromFloat64s(v) }

// NewVectorString wraps a string slice as a VARCHAR column (no copy).
func NewVectorString(v []string) *Vector { return vector.FromStrings(v) }

// NewVectorBlob wraps a byte-slice slice as a BLOB column (no copy).
func NewVectorBlob(v [][]byte) *Vector { return vector.FromBlobs(v) }

// DB is a database instance. Use Open to create one.
type DB struct {
	eng *engine.DB
	// modelCache memoizes deserialized models for the *_cached
	// prediction UDFs (paper §5.1).
	modelCache *modelCache
}

// Options configures a database instance at Open time. The zero value
// is a valid default configuration.
type Options struct {
	// Parallelism bounds the morsel-driven parallel executor's worker
	// goroutines (0 = all CPUs). See SetParallelism for the ordering
	// and floating-point guarantees.
	Parallelism int

	// MemoryBudget bounds, per query, the estimated bytes of
	// blocking-operator state (hash aggregation tables, join build
	// sides, sort runs) held in memory at once. Queries whose state
	// outgrows the budget degrade gracefully to disk: hash state
	// grace-partitions into temp files and re-aggregates or re-probes
	// partition by partition, sorts write sorted runs and merge them
	// streaming from disk. Results are identical to unbounded
	// execution (see Rows.SpillStats to observe spilling). 0 means
	// unlimited — out-of-core execution disabled.
	MemoryBudget int64

	// TempDir hosts per-query spill directories when MemoryBudget
	// forces out-of-core execution; empty means os.TempDir(). Each
	// query's spill files are removed when its result is closed,
	// including on cancellation and error.
	TempDir string

	// QueryTimeout bounds each SELECT's total time — admission wait
	// plus execution. Expired queries terminate with a deadline error
	// at the next cancellation checkpoint. 0 means no deadline.
	QueryTimeout time.Duration

	// Governor, when non-nil, installs process-wide resource
	// governance: concurrent SELECTs lease memory from a shared pool
	// and worker slots from a shared budget, excess queries wait in a
	// bounded FIFO admission queue, and overload is rejected with a
	// typed retryable error (see GovernorConfig). Nil (the default)
	// admits every query immediately, as before.
	Governor *GovernorConfig

	// NoCostPlanner disables the cost-based planning pass (join
	// reordering over column sketches, build-side selection,
	// serial/fan-out execution hints); plans then execute exactly as
	// bound. Results are identical either way — the switch exists for
	// benchmarking and differential testing. See SetCostPlanning.
	NoCostPlanner bool

	// WALDir, when non-empty, makes writes durable: every
	// CREATE/INSERT/DELETE/UPDATE/DROP appends a checksummed record to
	// a write-ahead log in this directory before it is acknowledged,
	// and opening the same directory again replays the log (plus the
	// latest checkpoint) to recover exactly the acknowledged writes —
	// a kill -9 mid-statement never loses acknowledged rows and never
	// leaves a table unreadable. Use OpenDurable/OpenDirOptions, whose
	// error returns surface recovery failures.
	WALDir string

	// SyncMode picks the WAL's fsync policy: SyncGroup (default)
	// fsyncs once per group-commit batch so concurrent writers share
	// the disk flush, SyncEach fsyncs every statement individually,
	// SyncNone leaves flushing to the OS (and to Checkpoint/Close).
	// Ignored without WALDir.
	SyncMode SyncMode

	// DisableWAL keeps the database purely in-memory even when WALDir
	// is set (escape hatch for tooling that reuses a durable config).
	DisableWAL bool
}

// SyncMode selects the WAL durability/latency trade-off; see the
// Options.SyncMode field.
type SyncMode = wal.SyncMode

// WAL sync modes.
const (
	// SyncGroup fsyncs once per group-commit batch (default).
	SyncGroup = wal.SyncGroup
	// SyncEach fsyncs every statement individually.
	SyncEach = wal.SyncEach
	// SyncNone never fsyncs on commit; only checkpoints and Close do.
	SyncNone = wal.SyncNone
)

// ParseSyncMode maps "group", "each" or "none" (and common aliases)
// to a SyncMode; the empty string selects SyncGroup.
func ParseSyncMode(s string) (SyncMode, error) { return wal.ParseSyncMode(s) }

// GovernorConfig configures the process-wide resource governor:
// shared memory pool, worker slots, concurrent-query and queue caps,
// and per-session limits. The zero value of each field selects a
// sensible default.
type GovernorConfig = governor.Config

// Open creates an empty in-memory database with the built-in function
// library and the ML UDF suite (train_*, predict, predict_confidence,
// weighted_label) registered.
func Open() *DB {
	db := &DB{eng: engine.New()}
	registerMLFunctions(db)
	return db
}

// OpenOptions creates an empty in-memory database configured with
// opts. Durability options (WALDir) are ignored here because WAL
// recovery can fail — use OpenDurable for a durable database.
func OpenOptions(opts Options) *DB {
	db := Open()
	db.applyOptions(opts)
	return db
}

// OpenDurable opens a database whose writes are durable: state left in
// opts.WALDir by a previous incarnation (checkpoint plus log) is
// recovered first, then every subsequent write is logged before it is
// acknowledged. Callers should Close (or Checkpoint) the database on
// shutdown.
func OpenDurable(opts Options) (*DB, error) {
	db := Open()
	db.applyOptions(opts)
	if err := db.enableWAL(opts); err != nil {
		return nil, err
	}
	return db, nil
}

func (db *DB) enableWAL(opts Options) error {
	if opts.WALDir == "" || opts.DisableWAL {
		return nil
	}
	return db.eng.EnableWAL(opts.WALDir, opts.SyncMode)
}

// Checkpoint persists every table under the WAL directory and
// truncates the log, bounding both recovery time and log size. It
// waits for in-flight writes to finish first.
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// Close flushes and closes the write-ahead log. The sealed log
// replays on the next OpenDurable; call Checkpoint first to also
// reset it. Close is a no-op for in-memory databases and idempotent.
func (db *DB) Close() error { return db.eng.Close() }

// OpenDir opens a database from a directory of table files written by
// SaveDir.
func OpenDir(dir string) (*DB, error) {
	db := Open()
	if err := db.eng.LoadDir(dir); err != nil {
		return nil, err
	}
	return db, nil
}

// OpenDirOptions opens a database from a directory of table files,
// configured with opts. When opts.WALDir is set the WAL's state
// (checkpoint and log) is recovered on top of the loaded tables and
// subsequent writes are durable.
func OpenDirOptions(dir string, opts Options) (*DB, error) {
	db, err := OpenDir(dir)
	if err != nil {
		return nil, err
	}
	db.applyOptions(opts)
	if err := db.enableWAL(opts); err != nil {
		return nil, err
	}
	return db, nil
}

func (db *DB) applyOptions(opts Options) {
	db.SetParallelism(opts.Parallelism)
	db.SetMemoryBudget(opts.MemoryBudget)
	db.SetTempDir(opts.TempDir)
	db.SetQueryTimeout(opts.QueryTimeout)
	db.SetCostPlanning(!opts.NoCostPlanner)
	if opts.Governor != nil {
		db.SetGovernor(*opts.Governor)
	}
}

// Exec parses and executes one SQL statement.
func (db *DB) Exec(query string) (*Result, error) { return db.eng.Exec(query) }

// ExecScript executes a semicolon-separated SQL script and returns the
// last statement's result.
func (db *DB) ExecScript(script string) (*Result, error) { return db.eng.ExecScript(script) }

// Query executes a SELECT and returns its materialized result table.
func (db *DB) Query(query string) (*Table, error) {
	res, err := db.eng.Exec(query)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// QueryStream executes a statement and streams its result: chunks are
// pulled from the executor on demand, so iterating a huge result holds
// O(chunk) memory and closing early stops the scan workers. The caller
// must Close the returned Rows.
func (db *DB) QueryStream(query string) (*Rows, error) {
	rs, err := db.eng.Query(query)
	if err != nil {
		return nil, err
	}
	return &Rows{rs: rs}, nil
}

// Rows is a streaming result iterator in the style of database/sql:
// row-at-a-time via Next/Value, or chunk-at-a-time via NextTable for
// bulk consumers. Not safe for concurrent use.
type Rows struct {
	rs  *engine.ResultSet
	ch  *vector.Chunk
	pos int
	err error
}

// Columns returns the result's column names (empty for row-less
// statements).
func (r *Rows) Columns() []string { return r.rs.Schema().Names() }

// Types returns the result's column types.
func (r *Rows) Types() []Type { return r.rs.Schema().Types() }

// HasRows reports whether the statement produces result rows (even if
// zero of them).
func (r *Rows) HasRows() bool { return r.rs.HasRows() }

// RowsAffected reports the write count of a row-less statement.
func (r *Rows) RowsAffected() int64 { return r.rs.RowsAffected() }

// Next advances to the next row, fetching the next chunk from the
// executor when the current one is exhausted. It returns false at end
// of result or on error; check Err afterwards.
func (r *Rows) Next() bool {
	if r.err != nil {
		return false
	}
	for r.ch == nil || r.pos+1 >= r.ch.NumRows() {
		ch, err := r.rs.Next()
		if err != nil {
			r.err = err
			return false
		}
		if ch == nil {
			return false
		}
		if ch.NumRows() == 0 {
			continue
		}
		r.ch, r.pos = ch, -1
	}
	r.pos++
	return true
}

// Value returns column i of the current row (valid after Next returned
// true).
func (r *Rows) Value(i int) Value { return r.ch.Col(i).Get(r.pos) }

// Row returns the current row as boxed values.
func (r *Rows) Row() []Value { return r.ch.Row(r.pos) }

// NextTable returns the next unconsumed slice of the result as a named
// table: the rest of the current chunk if Next left one partially
// read, otherwise the next chunk. It returns nil at end of result.
// The table owns its columns: executor chunks can alias the scan's
// recycled decode buffers (valid only until the next fetch), so the
// columns are copied out before being handed to the caller, who may
// retain them indefinitely.
func (r *Rows) NextTable() (*Table, error) {
	if r.err != nil {
		return nil, r.err
	}
	ch := r.ch
	if ch != nil && r.pos+1 < ch.NumRows() {
		ch = ch.Slice(r.pos+1, ch.NumRows())
	} else {
		var err error
		ch, err = r.rs.Next()
		if err != nil {
			r.err = err
			return nil, err
		}
	}
	r.ch, r.pos = nil, 0
	if ch == nil {
		return nil, nil
	}
	cols := make([]*vector.Vector, ch.NumCols())
	for i := range cols {
		cols[i] = ch.Col(i).Clone()
	}
	return vector.NewTable(r.rs.Schema().Names(), cols)
}

// ScanStats reports how many storage segments the query scanned and
// how many it skipped outright via zone-map pruning of pushed-down
// WHERE predicates. The counters are live while the result streams;
// read them after draining (or closing) for final values. Both are
// zero for row-less statements.
func (r *Rows) ScanStats() (scanned, skipped int64) {
	st := r.rs.ScanStats()
	return st.Scanned(), st.Skipped()
}

// SpillStats reports the query's out-of-core activity under a memory
// budget: how many grace partitions (hash aggregation and join state)
// and sorted runs went to disk, and the spill bytes written and read
// back. All zero when the query ran without a budget or fit within
// it. The counters are live while the result streams; read them after
// draining (or closing) for final values.
func (r *Rows) SpillStats() (partitions, runs, bytesWritten, bytesRead int64) {
	st := r.rs.SpillStats()
	return st.Partitions(), st.Runs(), st.BytesWritten(), st.BytesRead()
}

// Err returns the first error encountered while iterating.
func (r *Rows) Err() error { return r.err }

// Close releases the stream, stopping any parallel workers early.
// Always call it, including after Next returned false.
func (r *Rows) Close() error { return r.rs.Close() }

// RegisterScalar installs a vectorized scalar UDF.
func (db *DB) RegisterScalar(f *ScalarFunc) error { return db.eng.Registry().RegisterScalar(f) }

// RegisterTable installs a table-valued UDF.
func (db *DB) RegisterTable(f *TableFunc) error { return db.eng.Registry().RegisterTable(f) }

// SetParallelism bounds the worker goroutines used by the morsel-driven
// parallel executor (scans, filters, hash aggregation, hash-join
// probing) and by partitioned UDF evaluation. 0 restores NumCPU.
// Parallel execution preserves serial row order and row content, with
// a floating-point caveat: SUM/AVG over DOUBLE accumulate partial sums
// per worker, so results can differ from serial in the last ulps
// (floating-point addition is not associative) and between runs; and
// MIN/MAX over DOUBLE may pick either representative among values that
// compare equal but are distinguishable (NaN against numbers, -0.0 vs
// 0.0). Integer, string, COUNT and boolean results are exact.
func (db *DB) SetParallelism(n int) { db.eng.Parallelism = n }

// SetCostPlanning enables (the default) or disables the cost-based
// planning pass: join reordering driven by column sketches, build-side
// selection, and serial/spill-fan-out execution hints. Disabling it
// never changes results — plans just execute exactly as bound — so a
// before/after comparison isolates the planner's effect (EXPLAIN shows
// the chosen plan either way).
func (db *DB) SetCostPlanning(on bool) { db.eng.NoCostPlanner = !on }

// SetMemoryBudget bounds, per query, the estimated in-memory footprint
// of blocking operators; over-budget queries spill to TempDir and
// return identical results (Options.MemoryBudget has the details).
// 0 restores unlimited memory.
func (db *DB) SetMemoryBudget(bytes int64) { db.eng.MemoryBudget = bytes }

// SetTempDir sets where spill files go when a memory budget forces
// out-of-core execution. Empty restores os.TempDir().
func (db *DB) SetTempDir(dir string) { db.eng.TempDir = dir }

// SetQueryTimeout bounds each SELECT's total time, admission wait
// included (Options.QueryTimeout has the details). 0 removes the
// deadline. Call before queries start; it is not synchronized with
// concurrent query execution.
func (db *DB) SetQueryTimeout(d time.Duration) { db.eng.QueryTimeout = d }

// SetGovernor installs a process-wide resource governor configured by
// cfg (Options.Governor has the details). Call before queries start;
// it is not synchronized with concurrent query execution.
func (db *DB) SetGovernor(cfg GovernorConfig) { db.eng.Gov = governor.New(cfg) }

// GovernorStats is a snapshot of the resource governor's gauges and
// counters: active/queued queries, leased pool bytes and utilization,
// admission outcomes, and the adaptive-lease activity (TryGrow grants,
// reclaim shrinks) with their peak watermarks.
type GovernorStats = governor.Stats

// GovernorStats returns the governor's current snapshot; the zero
// value when no governor is installed.
func (db *DB) GovernorStats() GovernorStats {
	if db.eng.Gov == nil {
		return GovernorStats{}
	}
	return db.eng.Gov.Stats()
}

// SaveDir persists every table to dir.
func (db *DB) SaveDir(dir string) error { return db.eng.SaveDir(dir) }

// TableNames lists the tables in the database, sorted.
func (db *DB) TableNames() []string { return db.eng.Catalog().TableNames() }

// HasTable reports whether the named table exists.
func (db *DB) HasTable(name string) bool { return db.eng.Catalog().HasTable(name) }

// TableStats describes the physical layout of one table: segment
// counts, logical vs. compressed bytes, per-encoding column counts,
// and cumulative segments scanned vs. skipped by zone-map pruning.
type TableStats = storage.TableStats

// TableStats returns the physical statistics of the named table,
// making compression ratios and scan pruning observable:
//
//	st, _ := db.TableStats("events")
//	fmt.Printf("%d/%d segments sealed, %.1fx compression, %d segments pruned\n",
//		st.SealedSegments, st.Segments,
//		float64(st.LogicalBytes)/float64(st.CompressedBytes),
//		st.SegmentsSkipped)
func (db *DB) TableStats(name string) (TableStats, error) {
	tab, err := db.eng.Catalog().Table(name)
	if err != nil {
		return TableStats{}, err
	}
	return tab.Data.Stats(), nil
}

// NumRows returns the row count of the named table, or -1 when the
// table does not exist.
func (db *DB) NumRows(name string) int {
	tab, err := db.eng.Catalog().Table(name)
	if err != nil {
		return -1
	}
	return tab.Data.NumRows()
}

// CreateTableFrom creates a table named name from a materialized
// relation, bulk-appending its columns (the fast path for loading
// generated or imported data, bypassing SQL INSERT parsing).
func (db *DB) CreateTableFrom(name string, tab *Table) error {
	schema := make(catalog.Schema, tab.NumCols())
	for i, n := range tab.Names {
		schema[i] = catalog.Column{Name: n, Type: tab.Cols[i].Type()}
	}
	var ch *vector.Chunk
	if tab.NumRows() > 0 {
		ch = tab.Chunk()
	}
	return db.eng.CreateTableFrom(name, schema, ch)
}

// Engine exposes the underlying engine instance for in-module tooling
// (the network server wraps it); external users should not need it.
func (db *DB) Engine() *engine.DB { return db.eng }
