package vexdb

import (
	"fmt"
	"testing"
)

// benchPredictQuery scores 200k rows through either the streamed
// vectorized predict or the serial baseline registered by
// registerSerialPredict. Run with:
//
//	go test -bench BenchmarkPredict -run xx .
func benchPredictQuery(b *testing.B, fn string) {
	db := newMLStreamDB(b, 200000)
	registerSerialPredict(b, db)
	db.SetParallelism(1)
	// Score against the voterbench model shape: a 16-tree forest, not
	// the single tree the correctness tests use.
	if _, err := db.Exec(`CREATE TABLE mrf AS SELECT model FROM train_rf((SELECT f0, f1, f2, label FROM pts WHERE id < 2000), 16, 10, 1)`); err != nil {
		b.Fatal(err)
	}
	q := fmt.Sprintf(`SELECT count(*) AS n FROM (SELECT %s(model, f0, f1, f2) AS p FROM pts, mrf) q WHERE q.p >= 0`, fn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := db.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if tab.Cols[0].Int64s()[0] != 200000 {
			b.Fatal("wrong count")
		}
	}
	b.SetBytes(0)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/200000, "ns/row")
}

func BenchmarkPredictStreamed(b *testing.B) { benchPredictQuery(b, "predict") }
func BenchmarkPredictSerial(b *testing.B)   { benchPredictQuery(b, "predict_serial") }
