package vexdb

import (
	"fmt"
	"os"
	"testing"
)

// loadSpillWorkload loads a 200k-row high-cardinality events table
// (plus a dimension table for the join) through the public API. The
// shape mirrors workload.GenerateEvents (which datagen -events uses),
// regenerated here because the workload package imports vexdb.
func loadSpillWorkload(tb testing.TB, db *DB, rows int) {
	tb.Helper()
	keys := rows * 3 / 4
	ids := make([]int64, rows)
	ks := make([]int64, rows)
	vals := make([]float64, rows)
	tags := make([]string, rows)
	for i := 0; i < rows; i++ {
		ids[i] = int64(i)
		ks[i] = int64((uint64(i) * 2654435761) % uint64(keys))
		vals[i] = float64((i*31)%4096) / 16 // dyadic: exact float sums
		tags[i] = fmt.Sprintf("t%d", i%17)
	}
	ev, err := NewTable([]string{"event_id", "key", "val", "tag"}, []*Vector{
		NewVectorInt64(ids), NewVectorInt64(ks), NewVectorFloat64(vals), NewVectorString(tags)})
	if err != nil {
		tb.Fatal(err)
	}
	if err := db.CreateTableFrom("events", ev); err != nil {
		tb.Fatal(err)
	}
	nDim := rows / 2
	dks := make([]int64, nDim)
	dws := make([]float64, nDim)
	for i := range dks {
		dks[i] = int64(i)
		dws[i] = float64(i) / 4
	}
	dim, err := NewTable([]string{"k", "w"}, []*Vector{NewVectorInt64(dks), NewVectorFloat64(dws)})
	if err != nil {
		tb.Fatal(err)
	}
	if err := db.CreateTableFrom("dim", dim); err != nil {
		tb.Fatal(err)
	}
}

// spillSmokeQueries: a high-cardinality GROUP BY, a hash join with a
// large build side, and a full ORDER BY — the three blocking
// operators the memory budget governs.
var spillSmokeQueries = []string{
	"SELECT key, count(*) AS n, sum(val) AS s, min(tag) AS mt FROM events GROUP BY key",
	// events is the build (right) side: 200k rows, well over 4MB.
	"SELECT d.k, d.w, e.event_id, e.val FROM dim d JOIN events e ON d.k = e.key",
	"SELECT event_id, key, val FROM events ORDER BY val, event_id",
}

// materialize drains a streamed query into rendered rows plus its
// spill counters.
func materializeRows(tb testing.TB, db *DB, q string) ([]string, [4]int64) {
	tb.Helper()
	rows, err := db.QueryStream(q)
	if err != nil {
		tb.Fatalf("%s: %v", q, err)
	}
	defer rows.Close()
	var out []string
	for rows.Next() {
		line := ""
		for i := range rows.Columns() {
			line += rows.Value(i).String() + "|"
		}
		out = append(out, line)
	}
	if err := rows.Err(); err != nil {
		tb.Fatalf("%s: %v", q, err)
	}
	parts, runs, w, r := rows.SpillStats()
	return out, [4]int64{parts, runs, w, r}
}

// TestSpillSmoke is the acceptance criterion (and the CI spill
// smoke): with a 4MB budget, GROUP BY / hash join / ORDER BY over
// 200k high-cardinality rows must complete with nonzero SpillStats,
// return results byte-identical to the unlimited-budget run at
// workers 1, 2 and 8, and leave no files in TempDir afterward.
func TestSpillSmoke(t *testing.T) {
	const rows = 200_000
	ref := Open()
	loadSpillWorkload(t, ref, rows)
	ref.SetParallelism(1)

	tempDir := t.TempDir()
	budgeted := OpenOptions(Options{MemoryBudget: 4 << 20, TempDir: tempDir})
	loadSpillWorkload(t, budgeted, rows)

	for _, q := range spillSmokeQueries {
		want, refStats := materializeRows(t, ref, q)
		if refStats != [4]int64{} {
			t.Fatalf("%s: unlimited run spilled: %v", q, refStats)
		}
		for _, workers := range []int{1, 2, 8} {
			budgeted.SetParallelism(workers)
			got, stats := materializeRows(t, budgeted, q)
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d rows, want %d", q, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d row %d:\n  got  %s\n  want %s", q, workers, i, got[i], want[i])
				}
			}
			if stats == [4]int64{} {
				t.Fatalf("%s workers=%d: expected nonzero SpillStats under 4MB budget", q, workers)
			}
			if stats[2] == 0 || stats[3] == 0 {
				t.Fatalf("%s workers=%d: spill bytes written=%d read=%d", q, workers, stats[2], stats[3])
			}
			ents, err := os.ReadDir(tempDir)
			if err != nil {
				t.Fatal(err)
			}
			if len(ents) != 0 {
				t.Fatalf("%s workers=%d: %d entries left in temp dir", q, workers, len(ents))
			}
		}
	}
}

// BenchmarkMicroAggregateSpill measures the 200k-row high-cardinality
// GROUP BY at an unlimited budget vs. a 4MB budget (grace-partitioned
// out-of-core aggregation).
func BenchmarkMicroAggregateSpill(b *testing.B) {
	const rows = 200_000
	for _, budget := range []int64{0, 4 << 20} {
		name := "unlimited"
		if budget > 0 {
			name = "budget4MB"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			db := OpenOptions(Options{MemoryBudget: budget, TempDir: dir})
			loadSpillWorkload(b, db, rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab, err := db.Query("SELECT key, count(*) AS n, sum(val) AS s FROM events GROUP BY key")
				if err != nil {
					b.Fatal(err)
				}
				if tab.NumRows() == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkMicroSortSpill measures the 200k-row full ORDER BY at an
// unlimited vs. 4MB budget (external sorted runs + streaming merge).
func BenchmarkMicroSortSpill(b *testing.B) {
	const rows = 200_000
	for _, budget := range []int64{0, 4 << 20} {
		name := "unlimited"
		if budget > 0 {
			name = "budget4MB"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			db := OpenOptions(Options{MemoryBudget: budget, TempDir: dir})
			loadSpillWorkload(b, db, rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				rows, err := db.QueryStream("SELECT event_id, val FROM events ORDER BY val, event_id")
				if err != nil {
					b.Fatal(err)
				}
				for rows.Next() {
					n++
				}
				if err := rows.Err(); err != nil {
					b.Fatal(err)
				}
				rows.Close()
				if n == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}
