package vexdb

import (
	"fmt"
	"os"

	"vexdb/internal/fileformat/csvio"
	"vexdb/internal/frame"
	"vexdb/internal/vector"
)

// ImportCSV bulk-loads a headered CSV file into an existing table.
// The file's columns must match the table's schema in order; numeric
// and string column types are supported (BOOLEAN and BLOB columns
// cannot be imported from CSV). It returns the number of rows loaded.
func (db *DB) ImportCSV(table, path string) (int64, error) {
	tab, err := db.eng.Catalog().Table(table)
	if err != nil {
		return 0, err
	}
	types := make([]csvio.ColType, len(tab.Schema))
	for i, col := range tab.Schema {
		switch col.Type {
		case Int32, Int64:
			types[i] = csvio.Int
		case Float64:
			types[i] = csvio.Float
		case String:
			types[i] = csvio.Str
		default:
			return 0, fmt.Errorf("vexdb: column %q: cannot import %s from CSV", col.Name, col.Type)
		}
	}
	df, err := csvio.ReadFile(path, types)
	if err != nil {
		return 0, err
	}
	cols := make([]*Vector, len(df.Cols))
	for i := range df.Cols {
		c := &df.Cols[i]
		switch c.Kind {
		case frame.Int:
			if tab.Schema[i].Type == Int32 {
				v := vector.New(Int32, c.Len())
				for _, x := range c.Ints {
					v.AppendValue(vector.NewInt32(int32(x)))
				}
				cols[i] = v
			} else {
				cols[i] = vector.FromInt64s(c.Ints)
			}
		case frame.Float:
			cols[i] = vector.FromFloat64s(c.Floats)
		default:
			cols[i] = vector.FromStrings(c.Strs)
		}
	}
	if err := tab.Data.AppendChunk(vector.NewChunk(cols...)); err != nil {
		return 0, err
	}
	return int64(df.NumRows()), nil
}

// ExportCSV writes a query's result to a headered CSV file. BOOLEAN
// and BLOB result columns are not supported.
func (db *DB) ExportCSV(query, path string) (int64, error) {
	tab, err := db.Query(query)
	if err != nil {
		return 0, err
	}
	cols := make([]frame.Column, tab.NumCols())
	for i, c := range tab.Cols {
		switch c.Type() {
		case Int64:
			cols[i] = frame.IntCol(tab.Names[i], c.Int64s())
		case Int32:
			wide := make([]int64, c.Len())
			for j, x := range c.Int32s() {
				wide[j] = int64(x)
			}
			cols[i] = frame.IntCol(tab.Names[i], wide)
		case Float64:
			cols[i] = frame.FloatCol(tab.Names[i], c.Float64s())
		case String:
			cols[i] = frame.StrCol(tab.Names[i], c.Strings())
		default:
			return 0, fmt.Errorf("vexdb: column %q: cannot export %s to CSV", tab.Names[i], c.Type())
		}
	}
	df, err := frame.New(cols...)
	if err != nil {
		return 0, err
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if err := csvio.WriteFrame(f, df); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return int64(df.NumRows()), nil
}
