package modelstore

import (
	"testing"

	"vexdb"
	"vexdb/ml"
)

func trainSample(t *testing.T, seed int64) ([][]float64, []int) {
	t.Helper()
	n := 200
	x0 := make([]float64, n)
	x1 := make([]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		off := float64(cls) * 4
		x0[i] = off + float64((i*7+int(seed))%10)*0.1
		x1[i] = off + float64((i*3+int(seed))%10)*0.1
		y[i] = cls
	}
	return [][]float64{x0, x1}, y
}

func fitted(t *testing.T, c ml.Classifier, seed int64) ml.Classifier {
	t.Helper()
	X, y := trainSample(t, seed)
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSaveLoadList(t *testing.T) {
	db := vexdb.Open()
	s, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := s.Save("voters_rf", fitted(t, ml.NewRandomForest(4), 1),
		map[string]string{"n_estimators": "4", "max_depth": "12"})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Save("voters_nb", fitted(t, ml.NewGaussianNB(), 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != 1 || id2 != 2 {
		t.Fatalf("ids = %d, %d", id1, id2)
	}
	clf, meta, err := s.Load(id1)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Algo != "random_forest" || meta.Params != "max_depth=12,n_estimators=4" {
		t.Fatalf("meta = %+v", meta)
	}
	X, y := trainSample(t, 1)
	pred, err := clf.Predict(X)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := ml.Accuracy(y, pred)
	if acc < 0.95 {
		t.Fatalf("reloaded accuracy %.3f", acc)
	}
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[1].Name != "voters_nb" {
		t.Fatalf("list = %+v", list)
	}
	if _, _, err := s.Load(99); err == nil {
		t.Error("missing model should fail")
	}
}

func TestLoadByName(t *testing.T) {
	db := vexdb.Open()
	s, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save("m", fitted(t, ml.NewGaussianNB(), 1), nil); err != nil {
		t.Fatal(err)
	}
	id2, err := s.Save("m", fitted(t, ml.NewDecisionTree(), 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, meta, err := s.LoadByName("m")
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != id2 || meta.Algo != "decision_tree" {
		t.Fatalf("LoadByName must return the latest: %+v", meta)
	}
}

func TestScoresAndBest(t *testing.T) {
	db := vexdb.Open()
	s, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Save("a", fitted(t, ml.NewGaussianNB(), 1), nil)
	b, _ := s.Save("b", fitted(t, ml.NewDecisionTree(), 2), nil)
	for _, rec := range []struct {
		id     int64
		metric string
		v      float64
	}{{a, "accuracy", 0.91}, {b, "accuracy", 0.97}, {a, "f1", 0.90}} {
		if err := s.RecordScore(rec.id, "test", rec.metric, rec.v); err != nil {
			t.Fatal(err)
		}
	}
	best, err := s.Best("test", "accuracy")
	if err != nil {
		t.Fatal(err)
	}
	if best != b {
		t.Fatalf("best = %d, want %d", best, b)
	}
	scores, err := s.Scores(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 || scores[0].Metric != "accuracy" {
		t.Fatalf("scores = %+v", scores)
	}
	if _, err := s.Best("test", "nonexistent"); err == nil {
		t.Error("missing metric should fail")
	}
}

func TestMetaAnalysisViaSQL(t *testing.T) {
	// Models and scores are ordinary tables: relational meta-analysis
	// works with plain SQL (paper §3.3).
	db := vexdb.Open()
	s, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Save("a", fitted(t, ml.NewGaussianNB(), 1), nil)
	b, _ := s.Save("b", fitted(t, ml.NewRandomForest(2), 2), nil)
	_ = s.RecordScore(a, "test", "accuracy", 0.91)
	_ = s.RecordScore(b, "test", "accuracy", 0.88)
	tab, err := db.Query(`
		SELECT m.algo, avg(sc.value) AS acc
		FROM ml_models m JOIN ml_scores sc ON m.id = sc.model_id
		GROUP BY m.algo ORDER BY acc DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 || tab.Column("algo").Get(0).Str() != "gaussian_nb" {
		t.Fatalf("meta-analysis result wrong: %v", tab.Column("algo").Get(0))
	}
}

func TestEnsembleMajorityAndConfidence(t *testing.T) {
	db := vexdb.Open()
	s, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int64{}
	for i, c := range []ml.Classifier{ml.NewGaussianNB(), ml.NewDecisionTree(), ml.NewRandomForest(4)} {
		id, err := s.Save("m", fitted(t, c, int64(i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e, err := s.LoadEnsemble(ids...)
	if err != nil {
		t.Fatal(err)
	}
	X, y := trainSample(t, 0)
	maj, err := e.PredictMajority(X)
	if err != nil {
		t.Fatal(err)
	}
	accMaj, _ := ml.Accuracy(y, maj)
	if accMaj < 0.95 {
		t.Fatalf("majority accuracy %.3f", accMaj)
	}
	labels, winner, err := e.PredictHighestConfidence(X)
	if err != nil {
		t.Fatal(err)
	}
	accConf, _ := ml.Accuracy(y, labels)
	if accConf < 0.95 {
		t.Fatalf("confidence accuracy %.3f", accConf)
	}
	for _, w := range winner {
		if w < 0 || w >= len(ids) {
			t.Fatalf("winner index %d out of range", w)
		}
	}
	if _, err := s.LoadEnsemble(); err == nil {
		t.Error("empty ensemble should fail")
	}
}

func TestOpenIsIdempotent(t *testing.T) {
	db := vexdb.Open()
	if _, err := Open(db); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(db); err != nil {
		t.Fatal(err)
	}
}

func TestEscapedNames(t *testing.T) {
	db := vexdb.Open()
	s, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Save("it's a model", fitted(t, ml.NewGaussianNB(), 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, meta, err := s.LoadByName("it's a model")
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != id {
		t.Fatal("quoted name round trip")
	}
}
