package modelstore

import (
	"fmt"

	"vexdb/ml"
)

// Ensemble applies several stored models jointly — the paper's
// Section 3.3: "classify the same data using multiple models and use
// the result of the model that reports the highest confidence", or
// combine them by majority vote.
type Ensemble struct {
	Models []ml.Classifier
	IDs    []int64
}

// LoadEnsemble fetches the given model ids into an ensemble.
func (s *Store) LoadEnsemble(ids ...int64) (*Ensemble, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("modelstore: empty ensemble")
	}
	e := &Ensemble{IDs: ids}
	for _, id := range ids {
		clf, _, err := s.Load(id)
		if err != nil {
			return nil, err
		}
		e.Models = append(e.Models, clf)
	}
	return e, nil
}

// PredictMajority returns per-row majority-vote labels across the
// ensemble's models (ties broken toward the smaller label).
func (e *Ensemble) PredictMajority(X [][]float64) ([]int, error) {
	if len(e.Models) == 0 {
		return nil, fmt.Errorf("modelstore: empty ensemble")
	}
	preds := make([][]int, len(e.Models))
	for i, m := range e.Models {
		p, err := m.Predict(X)
		if err != nil {
			return nil, fmt.Errorf("modelstore: model %d: %w", e.IDs[i], err)
		}
		preds[i] = p
	}
	n := len(preds[0])
	out := make([]int, n)
	for r := 0; r < n; r++ {
		votes := make(map[int]int)
		for _, p := range preds {
			votes[p[r]]++
		}
		bestLabel, bestVotes := 0, -1
		for label, v := range votes {
			if v > bestVotes || (v == bestVotes && label < bestLabel) {
				bestLabel, bestVotes = label, v
			}
		}
		out[r] = bestLabel
	}
	return out, nil
}

// PredictHighestConfidence returns, per row, the prediction of the
// model reporting the highest class probability, plus which model won
// (index into IDs).
func (e *Ensemble) PredictHighestConfidence(X [][]float64) (labels []int, winner []int, err error) {
	if len(e.Models) == 0 {
		return nil, nil, fmt.Errorf("modelstore: empty ensemble")
	}
	type scored struct {
		labels []int
		conf   []float64
	}
	all := make([]scored, len(e.Models))
	for i, m := range e.Models {
		probs, err := m.PredictProba(X)
		if err != nil {
			return nil, nil, fmt.Errorf("modelstore: model %d: %w", e.IDs[i], err)
		}
		classes := m.Classes()
		ls := make([]int, len(probs))
		cs := make([]float64, len(probs))
		for r, p := range probs {
			best, bi := p[0], 0
			for k := 1; k < len(p); k++ {
				if p[k] > best {
					best, bi = p[k], k
				}
			}
			ls[r] = classes[bi]
			cs[r] = best
		}
		all[i] = scored{labels: ls, conf: cs}
	}
	n := len(all[0].labels)
	labels = make([]int, n)
	winner = make([]int, n)
	for r := 0; r < n; r++ {
		bi := 0
		for i := 1; i < len(all); i++ {
			if all[i].conf[r] > all[bi].conf[r] {
				bi = i
			}
		}
		labels[r] = all[bi].labels[r]
		winner[r] = bi
	}
	return labels, winner, nil
}
