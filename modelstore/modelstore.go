// Package modelstore manages trained machine-learning models inside a
// vexdb database: models and their metadata (algorithm,
// hyperparameters, creation order) live in ordinary tables, evaluation
// scores are recorded alongside, and standard relational queries
// select models for inference — the paper's Section 3.3 (and its
// ModelDB comparison) realized on top of the column store.
package modelstore

import (
	"fmt"
	"sort"
	"strings"

	"vexdb"
	"vexdb/ml"
)

// Store manages the model and score tables of one database.
type Store struct {
	db *vexdb.DB
}

// Meta describes one stored model.
type Meta struct {
	ID     int64
	Name   string
	Algo   string
	Params string // "key=value,key=value" hyperparameter record
}

// Score is one recorded evaluation result.
type Score struct {
	ModelID int64
	Dataset string
	Metric  string
	Value   float64
}

// Open initializes (or reuses) the model tables in db.
func Open(db *vexdb.DB) (*Store, error) {
	ddl := []string{
		`CREATE TABLE IF NOT EXISTS ml_models (
			id BIGINT, name VARCHAR, algo VARCHAR, params VARCHAR, model BLOB)`,
		`CREATE TABLE IF NOT EXISTS ml_scores (
			model_id BIGINT, dataset VARCHAR, metric VARCHAR, value DOUBLE)`,
	}
	for _, q := range ddl {
		if _, err := db.Exec(q); err != nil {
			return nil, fmt.Errorf("modelstore: %w", err)
		}
	}
	return &Store{db: db}, nil
}

// Save serializes a fitted model into the ml_models table and returns
// its id. Params records hyperparameters for later relational
// meta-analysis.
func (s *Store) Save(name string, clf ml.Classifier, params map[string]string) (int64, error) {
	blob, err := ml.Marshal(clf)
	if err != nil {
		return 0, fmt.Errorf("modelstore: %w", err)
	}
	id, err := s.nextID()
	if err != nil {
		return 0, err
	}
	// Insert via a registered one-shot table function would be
	// overkill; a literal insert with a hex-free path requires binding
	// the blob directly, so we register the row through the public
	// table API instead: build an INSERT ... VALUES with a placeholder
	// blob is unsupported, hence a tiny staging UDF-free path:
	if err := s.insertModel(id, name, clf.Name(), encodeParams(params), blob); err != nil {
		return 0, err
	}
	return id, nil
}

// insertModel appends a model row. SQL literals cannot carry blobs, so
// the row goes in through a transient table UDF.
func (s *Store) insertModel(id int64, name, algo, params string, blob []byte) error {
	fn := &vexdb.TableFunc{
		Name: "__modelstore_stage",
		Columns: []vexdb.ColumnDecl{
			{Name: "id", Type: vexdb.Int64},
			{Name: "name", Type: vexdb.String},
			{Name: "algo", Type: vexdb.String},
			{Name: "params", Type: vexdb.String},
			{Name: "model", Type: vexdb.Blob},
		},
		Fn: func([]vexdb.TableArg) (*vexdb.Table, error) {
			return newModelRow(id, name, algo, params, blob)
		},
	}
	if err := s.db.RegisterTable(fn); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	_, err := s.db.Exec("INSERT INTO ml_models SELECT * FROM __modelstore_stage()")
	if err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	return nil
}

func (s *Store) nextID() (int64, error) {
	tab, err := s.db.Query("SELECT max(id) AS m FROM ml_models")
	if err != nil {
		return 0, fmt.Errorf("modelstore: %w", err)
	}
	v := tab.Column("m").Get(0)
	if v.IsNull() {
		return 1, nil
	}
	return v.Int64() + 1, nil
}

// Load fetches and deserializes a model by id.
func (s *Store) Load(id int64) (ml.Classifier, Meta, error) {
	tab, err := s.db.Query(fmt.Sprintf(
		"SELECT id, name, algo, params, model FROM ml_models WHERE id = %d", id))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("modelstore: %w", err)
	}
	if tab.NumRows() == 0 {
		return nil, Meta{}, fmt.Errorf("modelstore: model %d not found", id)
	}
	return rowToModel(tab, 0)
}

// LoadByName fetches the most recently saved model with the given
// name.
func (s *Store) LoadByName(name string) (ml.Classifier, Meta, error) {
	tab, err := s.db.Query(fmt.Sprintf(
		"SELECT id, name, algo, params, model FROM ml_models WHERE name = '%s' ORDER BY id DESC LIMIT 1",
		escape(name)))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("modelstore: %w", err)
	}
	if tab.NumRows() == 0 {
		return nil, Meta{}, fmt.Errorf("modelstore: model %q not found", name)
	}
	return rowToModel(tab, 0)
}

func rowToModel(tab *vexdb.Table, r int) (ml.Classifier, Meta, error) {
	meta := Meta{
		ID:     tab.Column("id").Get(r).Int64(),
		Name:   tab.Column("name").Get(r).Str(),
		Algo:   tab.Column("algo").Get(r).Str(),
		Params: tab.Column("params").Get(r).Str(),
	}
	clf, err := ml.Unmarshal(tab.Column("model").Get(r).Bytes())
	if err != nil {
		return nil, Meta{}, fmt.Errorf("modelstore: model %d: %w", meta.ID, err)
	}
	return clf, meta, nil
}

// List returns metadata for all stored models, ordered by id.
func (s *Store) List() ([]Meta, error) {
	tab, err := s.db.Query("SELECT id, name, algo, params FROM ml_models ORDER BY id")
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	out := make([]Meta, tab.NumRows())
	for i := range out {
		out[i] = Meta{
			ID:     tab.Column("id").Get(i).Int64(),
			Name:   tab.Column("name").Get(i).Str(),
			Algo:   tab.Column("algo").Get(i).Str(),
			Params: tab.Column("params").Get(i).Str(),
		}
	}
	return out, nil
}

// RecordScore stores one evaluation result for a model.
func (s *Store) RecordScore(modelID int64, dataset, metric string, value float64) error {
	_, err := s.db.Exec(fmt.Sprintf(
		"INSERT INTO ml_scores VALUES (%d, '%s', '%s', %g)",
		modelID, escape(dataset), escape(metric), value))
	if err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	return nil
}

// Best returns the id of the model with the highest recorded value of
// metric on dataset — model selection as a relational query.
func (s *Store) Best(dataset, metric string) (int64, error) {
	tab, err := s.db.Query(fmt.Sprintf(`
		SELECT model_id FROM ml_scores
		WHERE dataset = '%s' AND metric = '%s'
		ORDER BY value DESC, model_id ASC LIMIT 1`,
		escape(dataset), escape(metric)))
	if err != nil {
		return 0, fmt.Errorf("modelstore: %w", err)
	}
	if tab.NumRows() == 0 {
		return 0, fmt.Errorf("modelstore: no %s scores on %s", metric, dataset)
	}
	return tab.Column("model_id").Get(0).Int64(), nil
}

// Scores returns all recorded scores for a model.
func (s *Store) Scores(modelID int64) ([]Score, error) {
	tab, err := s.db.Query(fmt.Sprintf(
		"SELECT dataset, metric, value FROM ml_scores WHERE model_id = %d ORDER BY dataset, metric", modelID))
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	out := make([]Score, tab.NumRows())
	for i := range out {
		out[i] = Score{
			ModelID: modelID,
			Dataset: tab.Column("dataset").Get(i).Str(),
			Metric:  tab.Column("metric").Get(i).Str(),
			Value:   tab.Column("value").Get(i).Float64(),
		}
	}
	return out, nil
}

func encodeParams(params map[string]string) string {
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + params[k]
	}
	return strings.Join(parts, ",")
}

// escape doubles single quotes for safe SQL string literals.
func escape(s string) string { return strings.ReplaceAll(s, "'", "''") }

func newModelRow(id int64, name, algo, params string, blob []byte) (*vexdb.Table, error) {
	idv := vexdb.NewVectorInt64([]int64{id})
	namev := vexdb.NewVectorString([]string{name})
	algov := vexdb.NewVectorString([]string{algo})
	paramsv := vexdb.NewVectorString([]string{params})
	modelv := vexdb.NewVectorBlob([][]byte{blob})
	return vexdb.NewTable(
		[]string{"id", "name", "algo", "params", "model"},
		[]*vexdb.Vector{idv, namev, algov, paramsv, modelv})
}
