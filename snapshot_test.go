package vexdb

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// Snapshot-isolation differential test: one writer streams INSERT
// batches while N readers stream full-table SELECTs. Every reader
// result must be byte-identical to some committed prefix — rows
// 0..k*batch-1 in insertion order for a whole number of committed
// statements k — never a torn statement, never reordered, never a row
// from the future appearing before an earlier row.
func TestSnapshotIsolationUnderIngest(t *testing.T) {
	const (
		batch      = 64
		statements = 60
	)
	values := func(base int) string {
		var sb strings.Builder
		sb.WriteString("INSERT INTO feed VALUES ")
		for i := 0; i < batch; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d)", base+i)
		}
		return sb.String()
	}

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := OpenOptions(Options{Parallelism: workers})
			if _, err := db.Exec("CREATE TABLE feed (x BIGINT)"); err != nil {
				t.Fatal(err)
			}

			var done atomic.Bool
			var writerErr error
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer done.Store(true)
				for s := 0; s < statements; s++ {
					if _, err := db.Exec(values(s * batch)); err != nil {
						writerErr = err
						return
					}
				}
			}()

			const nReaders = 4
			readerErrs := make([]error, nReaders)
			var scans atomic.Int64
			for r := 0; r < nReaders; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for !done.Load() || scans.Load() < 3 {
						if err := verifyPrefix(db, batch); err != nil {
							readerErrs[r] = err
							return
						}
						scans.Add(1)
					}
				}(r)
			}
			wg.Wait()
			if writerErr != nil {
				t.Fatalf("writer: %v", writerErr)
			}
			for r, err := range readerErrs {
				if err != nil {
					t.Fatalf("reader %d: %v", r, err)
				}
			}
			// Final state is the full table.
			if err := verifyPrefix(db, batch); err != nil {
				t.Fatal(err)
			}
			if n := db.NumRows("feed"); n != batch*statements {
				t.Fatalf("final rows = %d, want %d", n, batch*statements)
			}
			t.Logf("%d consistent snapshot scans", scans.Load())
		})
	}
}

// verifyPrefix streams SELECT x FROM feed and checks the result is
// exactly 0..n-1 in order with n a multiple of batch (whole committed
// statements only).
func verifyPrefix(db *DB, batch int) error {
	rows, err := db.QueryStream("SELECT x FROM feed")
	if err != nil {
		return err
	}
	defer rows.Close()
	n := int64(0)
	for rows.Next() {
		if got := rows.Value(0).Int64(); got != n {
			return fmt.Errorf("row %d holds %d: torn or reordered snapshot", n, got)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	if n%int64(batch) != 0 {
		return fmt.Errorf("saw %d rows: not a whole number of committed statements", n)
	}
	return nil
}

// The same invariant must hold while DELETE/UPDATE rewrites race the
// readers: a reader sees the table before or after a whole rewrite,
// never the truncated middle.
func TestSnapshotIsolationUnderRewrite(t *testing.T) {
	db := Open()
	if _, err := db.Exec("CREATE TABLE flip (x BIGINT)"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO flip VALUES (0)")
	for i := 1; i < 500; i++ {
		fmt.Fprintf(&sb, ", (%d)", i)
	}
	if _, err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	var writerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < 40; i++ {
			// Each UPDATE rewrites the whole table, negating then
			// restoring: readers must only ever see all-original or
			// all-negated.
			if _, err := db.Exec("UPDATE flip SET x = 0 - x - 1"); err != nil {
				writerErr = err
				return
			}
		}
	}()

	var readerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			tab, err := db.Query("SELECT x FROM flip")
			if err != nil {
				readerErr = err
				return
			}
			if tab.NumRows() != 500 {
				readerErr = fmt.Errorf("saw %d rows mid-rewrite", tab.NumRows())
				return
			}
			xs := tab.Cols[0].Int64s()
			neg := xs[0] < 0
			for i, x := range xs {
				want := int64(i)
				if neg {
					want = -want - 1
				}
				if x != want {
					readerErr = fmt.Errorf("row %d = %d (neg=%v): torn rewrite", i, x, neg)
					return
				}
			}
		}
	}()
	wg.Wait()
	if writerErr != nil {
		t.Fatalf("writer: %v", writerErr)
	}
	if readerErr != nil {
		t.Fatalf("reader: %v", readerErr)
	}
}

// Writers to different tables proceed concurrently; this mostly
// exercises the shared-DML path under -race.
func TestConcurrentWritersDifferentTables(t *testing.T) {
	db := Open()
	const tables, rows = 8, 200
	for i := 0; i < tables; i++ {
		if _, err := db.Exec(fmt.Sprintf("CREATE TABLE w%d (x BIGINT)", i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, tables)
	for i := 0; i < tables; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rows; r++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO w%d VALUES (%d)", i, r)); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	for i := 0; i < tables; i++ {
		if n := db.NumRows(fmt.Sprintf("w%d", i)); n != rows {
			t.Fatalf("table w%d has %d rows, want %d", i, n, rows)
		}
	}
}
