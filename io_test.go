package vexdb

import (
	"os"
	"path/filepath"
	"testing"
)

func TestImportExportCSV(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(src, []byte("id,score,name\n1,2.5,alice\n2,7.25,bob\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := Open()
	if _, err := db.Exec("CREATE TABLE t (id BIGINT, score DOUBLE, name VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	n, err := db.ImportCSV("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("imported %d rows", n)
	}
	tab, err := db.Query("SELECT name FROM t WHERE score > 3")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 1 || tab.Column("name").Get(0).Str() != "bob" {
		t.Fatal("imported data wrong")
	}

	out := filepath.Join(dir, "out.csv")
	m, err := db.ExportCSV("SELECT id, score FROM t ORDER BY id DESC", out)
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 {
		t.Fatalf("exported %d rows", m)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want := "id,score\n2,7.25\n1,2.5\n"
	if string(data) != want {
		t.Fatalf("export = %q, want %q", data, want)
	}
}

func TestImportCSVInt32Column(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(src, []byte("a\n7\n-3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := Open()
	if _, err := db.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ImportCSV("t", src); err != nil {
		t.Fatal(err)
	}
	tab, err := db.Query("SELECT sum(a) AS s FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("s").Get(0).Int64() != 4 {
		t.Fatal("int32 import")
	}
}

func TestImportErrors(t *testing.T) {
	db := Open()
	if _, err := db.ImportCSV("missing", "nope.csv"); err == nil {
		t.Error("missing table should fail")
	}
	if _, err := db.Exec("CREATE TABLE b (raw BLOB)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ImportCSV("b", "nope.csv"); err == nil {
		t.Error("blob column should fail before reading")
	}
	if _, err := db.Exec("CREATE TABLE ok (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ImportCSV("ok", "definitely-missing.csv"); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := db.ExportCSV("SELECT raw FROM b", filepath.Join(t.TempDir(), "x.csv")); err == nil {
		t.Error("blob export should fail")
	}
	if _, err := db.ExportCSV("SELECT * FROM missing", filepath.Join(t.TempDir(), "x.csv")); err == nil {
		t.Error("bad query should fail")
	}
}
