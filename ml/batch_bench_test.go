package ml

import (
	"math"
	"testing"
)

// benchForest fits a voterbench-shaped forest (16 trees, depth 10,
// 6 features) and returns it with one chunk of scoring input.
func benchForest(b *testing.B, nrows int) (*RandomForest, [][]float64) {
	b.Helper()
	const nfeat = 6
	X, y := benchData(8000, nfeat)
	f := NewRandomForest(16)
	f.MaxDepth = 10
	f.Seed = 7
	if err := f.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	Xs, _ := benchData(nrows, nfeat)
	return f, Xs
}

func benchData(n, nfeat int) ([][]float64, []int) {
	X := make([][]float64, nfeat)
	state := uint64(0x2545f4914f6cdd1d)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for f := range X {
		col := make([]float64, n)
		for i := range col {
			col[i] = next()*8 - 4
		}
		X[f] = col
	}
	y := make([]int, n)
	for i := range y {
		s := X[0][i] + X[1][i] - X[2][i]
		switch {
		case s > 1:
			y[i] = 2
		case s > -1:
			y[i] = 1
		}
		if i%97 == 0 {
			X[1][i] = math.NaN()
		}
	}
	return X, y
}

// BenchmarkForestBatch measures the streaming operator's scoring core:
// one 2048-row chunk through the batch path.
func BenchmarkForestBatch(b *testing.B) {
	f, X := benchForest(b, 2048)
	out := make([]int32, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.PredictLabelsInto(X, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/2048, "ns/row")
}

// BenchmarkForestRow measures the row-at-a-time Classifier path on the
// same chunk, for comparison.
func BenchmarkForestRow(b *testing.B) {
	f, X := benchForest(b, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Predict(X); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/2048, "ns/row")
}
