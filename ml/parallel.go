package ml

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Morsel-parallel training support. Parallel fits partition work into
// fixed-size row morsels (or contiguous tree ranges, for forests):
// workers claim morsels from a shared atomic cursor, accumulate
// per-morsel partial state, and the partials merge serially in morsel
// order. Because morsel boundaries and the merge order depend only on
// the input — never on the worker count or claim interleaving — a
// parallel fit produces byte-identical models at any worker count.

// fitMorselRows is the fixed row-morsel size of parallel training.
// It matches the engine's chunk size, but correctness only needs it
// constant: morsel boundaries define the floating-point summation
// grouping, which must not move with the worker count.
const fitMorselRows = 2048

// resolveWorkers clamps a requested worker count to [1, n] with 0 (or
// negative) meaning NumCPU.
func resolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelMorsels runs fn over morsel indices 0..nm-1 on up to
// `workers` goroutines, handing out indices through a shared atomic
// cursor. fn must only write state owned by its morsel index.
func parallelMorsels(workers, nm int, fn func(mi int)) {
	workers = resolveWorkers(workers, nm)
	if workers == 1 {
		for i := 0; i < nm; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nm {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// morselBounds returns the row range [lo, hi) of morsel mi over n rows.
func morselBounds(mi, n int) (int, int) {
	lo := mi * fitMorselRows
	hi := lo + fitMorselRows
	if hi > n {
		hi = n
	}
	return lo, hi
}

// numMorsels returns the morsel count covering n rows.
func numMorsels(n int) int {
	return (n + fitMorselRows - 1) / fitMorselRows
}
