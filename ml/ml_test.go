package ml

import (
	"math"
	"testing"
	"testing/quick"
)

// blobs2 generates a deterministic 2-class dataset: two Gaussian-ish
// blobs separated along both features.
func blobs2(n int, seed int64) ([][]float64, []int) {
	r := newRNG(seed)
	x0 := make([]float64, n)
	x1 := make([]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		cx := float64(cls) * 4
		x0[i] = cx + (r.Float64()-0.5)*2
		x1[i] = cx + (r.Float64()-0.5)*2
		y[i] = cls
	}
	return [][]float64{x0, x1}, y
}

// xorData is a dataset linear models cannot separate but trees can.
func xorData(n int, seed int64) ([][]float64, []int) {
	r := newRNG(seed)
	x0 := make([]float64, n)
	x1 := make([]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := r.Float64() > 0.5, r.Float64() > 0.5
		x0[i] = bto(a) + (r.Float64()-0.5)*0.4
		x1[i] = bto(b) + (r.Float64()-0.5)*0.4
		if a != b {
			y[i] = 1
		}
	}
	return [][]float64{x0, x1}, y
}

func bto(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func fitAccuracy(t *testing.T, c Classifier, X [][]float64, y []int) float64 {
	t.Helper()
	if err := c.Fit(X, y); err != nil {
		t.Fatalf("%s.Fit: %v", c.Name(), err)
	}
	pred, err := c.Predict(X)
	if err != nil {
		t.Fatalf("%s.Predict: %v", c.Name(), err)
	}
	acc, err := Accuracy(y, pred)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestDecisionTreeSeparable(t *testing.T) {
	X, y := blobs2(400, 1)
	acc := fitAccuracy(t, NewDecisionTree(), X, y)
	if acc < 0.95 {
		t.Fatalf("tree accuracy %.3f on separable data", acc)
	}
}

func TestDecisionTreeXOR(t *testing.T) {
	X, y := xorData(400, 2)
	acc := fitAccuracy(t, NewDecisionTree(), X, y)
	if acc < 0.95 {
		t.Fatalf("tree accuracy %.3f on XOR", acc)
	}
}

func TestDecisionTreeDepthLimit(t *testing.T) {
	X, y := xorData(200, 3)
	tr := &DecisionTree{MaxDepth: 1}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 1 {
		t.Fatalf("depth %d exceeds limit", d)
	}
}

func TestDecisionTreePureLeaf(t *testing.T) {
	X := [][]float64{{1, 2, 3, 4}}
	y := []int{7, 7, 7, 7}
	tr := NewDecisionTree()
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 {
		t.Fatalf("pure data should yield a single leaf, got %d nodes", tr.NumNodes())
	}
	pred, err := tr.Predict([][]float64{{9}})
	if err != nil || pred[0] != 7 {
		t.Fatalf("pred = %v, %v", pred, err)
	}
}

func TestRandomForestAccuracyAndDeterminism(t *testing.T) {
	X, y := xorData(600, 4)
	f1 := NewRandomForest(16)
	f1.Seed = 42
	acc := fitAccuracy(t, f1, X, y)
	if acc < 0.95 {
		t.Fatalf("forest accuracy %.3f on XOR", acc)
	}
	f2 := NewRandomForest(16)
	f2.Seed = 42
	if err := f2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p1, _ := f1.Predict(X)
	p2, _ := f2.Predict(X)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed, different predictions at row %d", i)
		}
	}
}

func TestRandomForestProbaSumsToOne(t *testing.T) {
	X, y := blobs2(200, 5)
	f := NewRandomForest(8)
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probs, err := f.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range probs {
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d probabilities sum to %v", i, sum)
		}
	}
}

func TestLogisticRegressionSeparable(t *testing.T) {
	X, y := blobs2(400, 6)
	acc := fitAccuracy(t, NewLogisticRegression(), X, y)
	if acc < 0.95 {
		t.Fatalf("logreg accuracy %.3f on separable data", acc)
	}
}

func TestLogisticRegressionMulticlass(t *testing.T) {
	// Three blobs at triangle corners so each class is linearly
	// separable from the rest (one-vs-rest needs that).
	r := newRNG(7)
	n := 600
	x0 := make([]float64, n)
	x1 := make([]float64, n)
	y := make([]int, n)
	centers := [3][2]float64{{0, 0}, {6, 0}, {0, 6}}
	for i := 0; i < n; i++ {
		cls := i % 3
		x0[i] = centers[cls][0] + (r.Float64()-0.5)*2
		x1[i] = centers[cls][1] + (r.Float64()-0.5)*2
		y[i] = cls * 10 // non-contiguous labels
	}
	m := NewLogisticRegression()
	acc := fitAccuracy(t, m, [][]float64{x0, x1}, y)
	if acc < 0.9 {
		t.Fatalf("multiclass accuracy %.3f", acc)
	}
	if got := m.Classes(); len(got) != 3 || got[0] != 0 || got[2] != 20 {
		t.Fatalf("classes = %v", got)
	}
}

func TestGaussianNB(t *testing.T) {
	X, y := blobs2(400, 8)
	acc := fitAccuracy(t, NewGaussianNB(), X, y)
	if acc < 0.95 {
		t.Fatalf("nb accuracy %.3f", acc)
	}
}

func TestKNN(t *testing.T) {
	X, y := blobs2(300, 9)
	acc := fitAccuracy(t, NewKNN(5), X, y)
	if acc < 0.95 {
		t.Fatalf("knn accuracy %.3f", acc)
	}
}

func TestNotFittedErrors(t *testing.T) {
	X := [][]float64{{1, 2}}
	for _, c := range []Classifier{NewDecisionTree(), NewRandomForest(2), NewLogisticRegression(), NewGaussianNB(), NewKNN(3)} {
		if _, err := c.Predict(X); err == nil {
			t.Errorf("%s: predict before fit should fail", c.Name())
		}
	}
}

func TestFitValidation(t *testing.T) {
	if err := NewDecisionTree().Fit([][]float64{{1, 2}, {1}}, []int{0, 1}); err == nil {
		t.Error("ragged matrix should fail")
	}
	if err := NewDecisionTree().Fit([][]float64{{1, 2}}, []int{0}); err == nil {
		t.Error("label length mismatch should fail")
	}
	if err := NewDecisionTree().Fit(nil, nil); err == nil {
		t.Error("empty matrix should fail")
	}
	tr := NewDecisionTree()
	if err := tr.Fit([][]float64{{1, 2, 3, 4}}, []int{0, 1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Predict([][]float64{{1}, {2}}); err == nil {
		t.Error("feature count mismatch at predict should fail")
	}
}

func TestSerializeRoundTripAllModels(t *testing.T) {
	X, y := blobs2(200, 10)
	models := []Classifier{
		NewDecisionTree(),
		NewRandomForest(4),
		NewLogisticRegression(),
		NewGaussianNB(),
		NewKNN(3),
	}
	for _, m := range models {
		if err := m.Fit(X, y); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		blob, err := Marshal(m)
		if err != nil {
			t.Fatalf("%s marshal: %v", m.Name(), err)
		}
		back, err := Unmarshal(blob)
		if err != nil {
			t.Fatalf("%s unmarshal: %v", m.Name(), err)
		}
		if back.Name() != m.Name() {
			t.Fatalf("name %q != %q", back.Name(), m.Name())
		}
		p1, err := m.Predict(X)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := back.Predict(X)
		if err != nil {
			t.Fatalf("%s deserialized predict: %v", m.Name(), err)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("%s: prediction %d differs after round trip", m.Name(), i)
			}
		}
	}
}

func TestUnmarshalCorruption(t *testing.T) {
	X, y := blobs2(50, 11)
	m := NewDecisionTree()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	blob, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(blob[:5]); err == nil {
		t.Error("truncated blob should fail")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := Unmarshal(blob[:len(blob)-4]); err == nil {
		t.Error("truncated tail should fail")
	}
}

func TestMetrics(t *testing.T) {
	truth := []int{0, 0, 1, 1, 1}
	pred := []int{0, 1, 1, 1, 0}
	acc, err := Accuracy(truth, pred)
	if err != nil || acc != 0.6 {
		t.Fatalf("accuracy = %v, %v", acc, err)
	}
	m, classes, err := ConfusionMatrix(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 || m[0][0] != 1 || m[0][1] != 1 || m[1][0] != 1 || m[1][1] != 2 {
		t.Fatalf("confusion = %v classes = %v", m, classes)
	}
	reports, err := PrecisionRecallF1(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	// class 1: tp=2, fp=1, fn=1 -> precision 2/3, recall 2/3
	if math.Abs(reports[1].Precision-2.0/3) > 1e-9 || math.Abs(reports[1].Recall-2.0/3) > 1e-9 {
		t.Fatalf("report = %+v", reports[1])
	}
	if _, err := Accuracy([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestLogLoss(t *testing.T) {
	probs := [][]float64{{0.9, 0.1}, {0.2, 0.8}}
	ll, err := LogLoss([]int{0, 1}, probs, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := -(math.Log(0.9) + math.Log(0.8)) / 2
	if math.Abs(ll-want) > 1e-9 {
		t.Fatalf("logloss = %v, want %v", ll, want)
	}
	if _, err := LogLoss([]int{5}, probs[:1], []int{0, 1}); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestStandardScaler(t *testing.T) {
	X := [][]float64{{1, 2, 3, 4}, {10, 10, 10, 10}}
	s := &StandardScaler{}
	out, err := s.FitTransform(X)
	if err != nil {
		t.Fatal(err)
	}
	mean := (out[0][0] + out[0][1] + out[0][2] + out[0][3]) / 4
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("scaled mean = %v", mean)
	}
	// Constant column: std 0 becomes 1, values become 0.
	if out[1][0] != 0 {
		t.Fatalf("constant column scaled to %v", out[1][0])
	}
}

func TestMinMaxScaler(t *testing.T) {
	X := [][]float64{{2, 4, 6}}
	s := &MinMaxScaler{}
	if err := s.Fit(X); err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform(X)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 0 || out[0][2] != 1 || out[0][1] != 0.5 {
		t.Fatalf("minmax = %v", out[0])
	}
}

func TestImputeMean(t *testing.T) {
	X := [][]float64{{1, math.NaN(), 3}}
	n := ImputeMean(X)
	if n != 1 || X[0][1] != 2 {
		t.Fatalf("imputed %d, value %v", n, X[0][1])
	}
}

func TestTrainTestSplit(t *testing.T) {
	X, y := blobs2(100, 12)
	trX, trY, teX, teY, err := TrainTestSplit(X, y, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(teY) != 25 || len(trY) != 75 {
		t.Fatalf("split sizes %d/%d", len(trY), len(teY))
	}
	if len(trX[0]) != 75 || len(teX[0]) != 25 {
		t.Fatal("feature split sizes")
	}
	// Deterministic given the seed.
	_, trY2, _, _, err := TrainTestSplit(X, y, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trY {
		if trY[i] != trY2[i] {
			t.Fatal("split not deterministic")
		}
	}
	if _, _, _, _, err := TrainTestSplit(X, y, 1.5, 1); err == nil {
		t.Error("bad fraction should fail")
	}
}

func TestKFoldPartition(t *testing.T) {
	folds, err := KFold(10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for _, f := range folds {
		for _, i := range f[1] {
			seen[i]++
		}
		if len(f[0])+len(f[1]) != 10 {
			t.Fatal("fold sizes")
		}
	}
	if len(seen) != 10 {
		t.Fatalf("test folds cover %d rows", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("row %d appears in %d test folds", i, c)
		}
	}
}

func TestCrossValidate(t *testing.T) {
	X, y := blobs2(150, 13)
	scores, err := CrossValidate(func() Classifier { return NewGaussianNB() }, X, y, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores = %v", scores)
	}
	for _, s := range scores {
		if s < 0.9 {
			t.Fatalf("cv scores = %v", scores)
		}
	}
}

// Property: forest prediction matches serialize/deserialize prediction
// for arbitrary small datasets.
func TestQuickSerializeForest(t *testing.T) {
	f := func(seed int64) bool {
		X, y := blobs2(60, seed)
		m := NewRandomForest(3)
		m.Seed = seed
		if err := m.Fit(X, y); err != nil {
			return false
		}
		blob, err := Marshal(m)
		if err != nil {
			return false
		}
		back, err := Unmarshal(blob)
		if err != nil {
			return false
		}
		p1, _ := m.Predict(X)
		p2, _ := back.Predict(X)
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: tree prediction probabilities are valid distributions.
func TestQuickTreeProbsValid(t *testing.T) {
	f := func(seed int64) bool {
		X, y := xorData(80, seed)
		m := NewDecisionTree()
		if err := m.Fit(X, y); err != nil {
			return false
		}
		probs, err := m.PredictProba(X)
		if err != nil {
			return false
		}
		for _, p := range probs {
			sum := 0.0
			for _, v := range p {
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(5), newRNG(5)
	for i := 0; i < 100; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatal("rng not deterministic")
		}
	}
	p := newRNG(9).Perm(10)
	seen := make(map[int]bool)
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatal("perm not a permutation")
	}
}
