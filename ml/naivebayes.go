package ml

import (
	"fmt"
	"math"
)

// GaussianNB is a Gaussian naive Bayes classifier: per-class feature
// means and variances with log-likelihood scoring.
type GaussianNB struct {
	// VarSmoothing is added to every variance for numerical stability
	// (default 1e-9 times the largest feature variance).
	VarSmoothing float64

	classes []int
	priors  []float64   // log priors per class
	means   [][]float64 // [class][feature]
	vars    [][]float64 // [class][feature]
	nfeat   int
}

// NewGaussianNB returns a Gaussian naive Bayes model with defaults.
func NewGaussianNB() *GaussianNB { return &GaussianNB{} }

// Name implements Classifier.
func (m *GaussianNB) Name() string { return "gaussian_nb" }

// Classes implements Classifier.
func (m *GaussianNB) Classes() []int { return m.classes }

// Fit implements Classifier.
func (m *GaussianNB) Fit(X [][]float64, y []int) error {
	n, err := validateXY(X, y)
	if err != nil {
		return err
	}
	classes, cidx := classIndex(y)
	m.classes = classes
	m.nfeat = len(X)
	k := len(classes)
	counts := make([]float64, k)
	m.means = make([][]float64, k)
	m.vars = make([][]float64, k)
	for c := 0; c < k; c++ {
		m.means[c] = make([]float64, m.nfeat)
		m.vars[c] = make([]float64, m.nfeat)
	}
	for i, c := range y {
		ci := cidx[c]
		counts[ci]++
		for f := 0; f < m.nfeat; f++ {
			m.means[ci][f] += X[f][i]
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		for f := 0; f < m.nfeat; f++ {
			m.means[c][f] /= counts[c]
		}
	}
	for i, c := range y {
		ci := cidx[c]
		for f := 0; f < m.nfeat; f++ {
			d := X[f][i] - m.means[ci][f]
			m.vars[ci][f] += d * d
		}
	}
	// Smoothing relative to the global variance scale.
	maxVar := 0.0
	for c := 0; c < k; c++ {
		for f := 0; f < m.nfeat; f++ {
			if counts[c] > 0 {
				m.vars[c][f] /= counts[c]
			}
			if m.vars[c][f] > maxVar {
				maxVar = m.vars[c][f]
			}
		}
	}
	eps := m.VarSmoothing
	if eps <= 0 {
		eps = 1e-9 * maxVar
		if eps <= 0 {
			eps = 1e-9
		}
	}
	for c := 0; c < k; c++ {
		for f := 0; f < m.nfeat; f++ {
			m.vars[c][f] += eps
		}
	}
	m.priors = make([]float64, k)
	for c := 0; c < k; c++ {
		m.priors[c] = math.Log(counts[c] / float64(n))
	}
	return nil
}

// PredictProba implements Classifier.
func (m *GaussianNB) PredictProba(X [][]float64) ([][]float64, error) {
	if m.means == nil {
		return nil, ErrNotFitted
	}
	n, err := validateX(X)
	if err != nil {
		return nil, err
	}
	if len(X) != m.nfeat {
		return nil, fmt.Errorf("ml: model fitted on %d features, got %d", m.nfeat, len(X))
	}
	k := len(m.classes)
	out := make([][]float64, n)
	logp := make([]float64, k)
	for r := 0; r < n; r++ {
		for c := 0; c < k; c++ {
			lp := m.priors[c]
			for f := 0; f < m.nfeat; f++ {
				v := m.vars[c][f]
				d := X[f][r] - m.means[c][f]
				lp += -0.5*math.Log(2*math.Pi*v) - d*d/(2*v)
			}
			logp[c] = lp
		}
		out[r] = softmaxFromLogs(logp)
	}
	return out, nil
}

// softmaxFromLogs exponentiates shifted log scores into probabilities.
func softmaxFromLogs(logp []float64) []float64 {
	out := make([]float64, len(logp))
	softmaxInto(logp, out)
	return out
}

// softmaxInto is softmaxFromLogs writing into caller scratch (same
// arithmetic, no allocation) for the batch prediction path.
func softmaxInto(logp, out []float64) {
	maxLog := logp[0]
	for _, v := range logp[1:] {
		if v > maxLog {
			maxLog = v
		}
	}
	sum := 0.0
	for i, v := range logp {
		out[i] = math.Exp(v - maxLog)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
}

// NBPartial is the mergeable sufficient-statistics accumulator of
// Gaussian naive Bayes training: per-class row counts, feature sums,
// and feature sums of squares. Partials merge by plain addition, so
// per-worker statistics combine exactly like the engine's partitioned
// DISTINCT key sets — the merge result depends only on the merge
// order, never on which worker produced which partial.
type NBPartial struct {
	counts []float64
	sum    [][]float64 // [class][feature]
	sumsq  [][]float64 // [class][feature]
}

// NewNBPartial returns an empty accumulator for k classes over nfeat
// features.
func NewNBPartial(k, nfeat int) *NBPartial {
	p := &NBPartial{
		counts: make([]float64, k),
		sum:    make([][]float64, k),
		sumsq:  make([][]float64, k),
	}
	for c := 0; c < k; c++ {
		p.sum[c] = make([]float64, nfeat)
		p.sumsq[c] = make([]float64, nfeat)
	}
	return p
}

// Observe accumulates rows [lo, hi) of X; yi holds class indices.
func (p *NBPartial) Observe(X [][]float64, yi []int, lo, hi int) {
	for i := lo; i < hi; i++ {
		c := yi[i]
		p.counts[c]++
		sum, sumsq := p.sum[c], p.sumsq[c]
		for f := range X {
			v := X[f][i]
			sum[f] += v
			sumsq[f] += v * v
		}
	}
}

// Merge adds o's statistics into p.
func (p *NBPartial) Merge(o *NBPartial) {
	for c := range p.counts {
		p.counts[c] += o.counts[c]
		for f := range p.sum[c] {
			p.sum[c][f] += o.sum[c][f]
			p.sumsq[c][f] += o.sumsq[c][f]
		}
	}
}

// FitParallel trains the model from per-morsel sufficient statistics
// accumulated by up to `workers` goroutines (0 means NumCPU) and
// merged in morsel order. Because morsel boundaries are fixed and the
// merge is ordered, the fitted model is byte-identical at any worker
// count; its last-bit numerics may differ from the two-pass serial
// Fit (variance via E[x²]−E[x]² instead of centered deviations).
func (m *GaussianNB) FitParallel(X [][]float64, y []int, workers int) error {
	n, err := validateXY(X, y)
	if err != nil {
		return err
	}
	classes, cidx := classIndex(y)
	yi := make([]int, n)
	for i, c := range y {
		yi[i] = cidx[c]
	}
	k := len(classes)
	nm := numMorsels(n)
	parts := make([]*NBPartial, nm)
	parallelMorsels(workers, nm, func(mi int) {
		lo, hi := morselBounds(mi, n)
		p := NewNBPartial(k, len(X))
		p.Observe(X, yi, lo, hi)
		parts[mi] = p
	})
	total := NewNBPartial(k, len(X))
	for _, p := range parts {
		total.Merge(p)
	}
	return m.fitFromStats(classes, len(X), n, total)
}

// fitFromStats finalizes the model parameters from merged sufficient
// statistics.
func (m *GaussianNB) fitFromStats(classes []int, nfeat, n int, s *NBPartial) error {
	m.classes = classes
	m.nfeat = nfeat
	k := len(classes)
	m.means = make([][]float64, k)
	m.vars = make([][]float64, k)
	maxVar := 0.0
	for c := 0; c < k; c++ {
		m.means[c] = make([]float64, nfeat)
		m.vars[c] = make([]float64, nfeat)
		cnt := s.counts[c]
		if cnt == 0 {
			continue
		}
		for f := 0; f < nfeat; f++ {
			mean := s.sum[c][f] / cnt
			m.means[c][f] = mean
			// E[x²]−E[x]² can round a hair below zero; clamp.
			v := s.sumsq[c][f]/cnt - mean*mean
			if v < 0 {
				v = 0
			}
			m.vars[c][f] = v
			if v > maxVar {
				maxVar = v
			}
		}
	}
	eps := m.VarSmoothing
	if eps <= 0 {
		eps = 1e-9 * maxVar
		if eps <= 0 {
			eps = 1e-9
		}
	}
	for c := 0; c < k; c++ {
		for f := 0; f < nfeat; f++ {
			m.vars[c][f] += eps
		}
	}
	m.priors = make([]float64, k)
	for c := 0; c < k; c++ {
		m.priors[c] = math.Log(s.counts[c] / float64(n))
	}
	return nil
}

// Predict implements Classifier.
func (m *GaussianNB) Predict(X [][]float64) ([]int, error) {
	probs, err := m.PredictProba(X)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(probs))
	for i, p := range probs {
		out[i] = m.classes[argmax(p)]
	}
	return out, nil
}
