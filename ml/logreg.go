package ml

import (
	"fmt"
	"math"
)

// LogisticRegression is a one-vs-rest binary/multiclass logistic
// regression trained by full-batch gradient descent with L2
// regularization.
type LogisticRegression struct {
	// LearningRate is the gradient step size (default 0.1).
	LearningRate float64
	// Iterations is the gradient descent step count (default 200).
	Iterations int
	// L2 is the ridge penalty strength (default 1e-4).
	L2 float64

	// weights[k] holds the weight vector (plus bias as last element)
	// of the one-vs-rest model for class k.
	weights [][]float64
	classes []int
	nfeat   int
}

// NewLogisticRegression returns a model with common defaults.
func NewLogisticRegression() *LogisticRegression {
	return &LogisticRegression{LearningRate: 0.1, Iterations: 200, L2: 1e-4}
}

// Name implements Classifier.
func (m *LogisticRegression) Name() string { return "logistic_regression" }

// Classes implements Classifier.
func (m *LogisticRegression) Classes() []int { return m.classes }

// Fit implements Classifier.
func (m *LogisticRegression) Fit(X [][]float64, y []int) error {
	n, err := validateXY(X, y)
	if err != nil {
		return err
	}
	if m.LearningRate <= 0 {
		m.LearningRate = 0.1
	}
	if m.Iterations <= 0 {
		m.Iterations = 200
	}
	classes, cidx := classIndex(y)
	if len(classes) < 2 {
		return fmt.Errorf("ml: logistic regression needs at least 2 classes, got %d", len(classes))
	}
	m.classes = classes
	m.nfeat = len(X)
	p := len(X)

	m.weights = make([][]float64, len(classes))
	targets := make([]float64, n)
	grad := make([]float64, p+1)
	preds := make([]float64, n)
	for k := range classes {
		w := make([]float64, p+1)
		for i, c := range y {
			if cidx[c] == k {
				targets[i] = 1
			} else {
				targets[i] = 0
			}
		}
		for it := 0; it < m.Iterations; it++ {
			// preds = sigmoid(Xw + b), computed column-wise.
			for i := range preds {
				preds[i] = w[p] // bias
			}
			for f := 0; f < p; f++ {
				wf := w[f]
				if wf == 0 {
					continue
				}
				col := X[f]
				for i := range preds {
					preds[i] += wf * col[i]
				}
			}
			for i := range preds {
				preds[i] = sigmoid(preds[i]) - targets[i] // residual
			}
			// grad = X^T residual / n + l2*w
			for f := 0; f < p; f++ {
				col := X[f]
				g := 0.0
				for i := range preds {
					g += col[i] * preds[i]
				}
				grad[f] = g/float64(n) + m.L2*w[f]
			}
			gb := 0.0
			for i := range preds {
				gb += preds[i]
			}
			grad[p] = gb / float64(n)
			for f := range w {
				w[f] -= m.LearningRate * grad[f]
			}
		}
		m.weights[k] = w
	}
	return nil
}

// FitParallel trains by the same full-batch gradient descent as Fit,
// parallelized over row morsels: each iteration computes residuals
// over disjoint row ranges concurrently (per-row arithmetic, identical
// to serial) and accumulates per-morsel gradient partials that merge
// in morsel order. Fixed morsel boundaries make the fitted weights
// byte-identical at any worker count (0 means NumCPU); the gradient's
// summation grouping differs from Fit, so its last-bit numerics may
// differ from the serial path.
func (m *LogisticRegression) FitParallel(X [][]float64, y []int, workers int) error {
	n, err := validateXY(X, y)
	if err != nil {
		return err
	}
	if m.LearningRate <= 0 {
		m.LearningRate = 0.1
	}
	if m.Iterations <= 0 {
		m.Iterations = 200
	}
	classes, cidx := classIndex(y)
	if len(classes) < 2 {
		return fmt.Errorf("ml: logistic regression needs at least 2 classes, got %d", len(classes))
	}
	m.classes = classes
	m.nfeat = len(X)
	p := len(X)
	nm := numMorsels(n)

	m.weights = make([][]float64, len(classes))
	targets := make([]float64, n)
	preds := make([]float64, n)
	grad := make([]float64, p+1)
	partials := make([][]float64, nm)
	for mi := range partials {
		partials[mi] = make([]float64, p+1)
	}
	for k := range classes {
		w := make([]float64, p+1)
		for i, c := range y {
			if cidx[c] == k {
				targets[i] = 1
			} else {
				targets[i] = 0
			}
		}
		for it := 0; it < m.Iterations; it++ {
			parallelMorsels(workers, nm, func(mi int) {
				lo, hi := morselBounds(mi, n)
				// Residuals over this morsel's disjoint row range.
				for i := lo; i < hi; i++ {
					preds[i] = w[p] // bias
				}
				for f := 0; f < p; f++ {
					wf := w[f]
					if wf == 0 {
						continue
					}
					col := X[f]
					for i := lo; i < hi; i++ {
						preds[i] += wf * col[i]
					}
				}
				for i := lo; i < hi; i++ {
					preds[i] = sigmoid(preds[i]) - targets[i]
				}
				// This morsel's gradient partial: X^T residual.
				g := partials[mi]
				for f := 0; f < p; f++ {
					col := X[f]
					s := 0.0
					for i := lo; i < hi; i++ {
						s += col[i] * preds[i]
					}
					g[f] = s
				}
				s := 0.0
				for i := lo; i < hi; i++ {
					s += preds[i]
				}
				g[p] = s
			})
			// Merge partials in morsel order; the grouping is fixed by
			// the morsel layout, so the sum is worker-count independent.
			for f := 0; f <= p; f++ {
				s := 0.0
				for _, g := range partials {
					s += g[f]
				}
				if f < p {
					grad[f] = s/float64(n) + m.L2*w[f]
				} else {
					grad[f] = s / float64(n)
				}
			}
			for f := range w {
				w[f] -= m.LearningRate * grad[f]
			}
		}
		m.weights[k] = w
	}
	return nil
}

func sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

// PredictProba implements Classifier: one-vs-rest scores normalized to
// sum to one.
func (m *LogisticRegression) PredictProba(X [][]float64) ([][]float64, error) {
	if m.weights == nil {
		return nil, ErrNotFitted
	}
	n, err := validateX(X)
	if err != nil {
		return nil, err
	}
	if len(X) != m.nfeat {
		return nil, fmt.Errorf("ml: model fitted on %d features, got %d", m.nfeat, len(X))
	}
	p := m.nfeat
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, len(m.classes))
	}
	scores := make([]float64, n)
	for k, w := range m.weights {
		for i := range scores {
			scores[i] = w[p]
		}
		for f := 0; f < p; f++ {
			wf := w[f]
			if wf == 0 {
				continue
			}
			col := X[f]
			for i := range scores {
				scores[i] += wf * col[i]
			}
		}
		for i := range scores {
			out[i][k] = sigmoid(scores[i])
		}
	}
	for i := range out {
		sum := 0.0
		for _, v := range out[i] {
			sum += v
		}
		if sum > 0 {
			for k := range out[i] {
				out[i][k] /= sum
			}
		}
	}
	return out, nil
}

// Predict implements Classifier.
func (m *LogisticRegression) Predict(X [][]float64) ([]int, error) {
	probs, err := m.PredictProba(X)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(probs))
	for i, pr := range probs {
		out[i] = m.classes[argmax(pr)]
	}
	return out, nil
}
