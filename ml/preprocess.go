package ml

import (
	"fmt"
	"math"
)

// StandardScaler centers features to zero mean and unit variance,
// mirroring the preprocessing stage of the paper's pipeline.
type StandardScaler struct {
	Means []float64
	Stds  []float64
}

// Fit computes per-feature means and standard deviations.
func (s *StandardScaler) Fit(X [][]float64) error {
	n, err := validateX(X)
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("ml: cannot fit scaler on zero rows")
	}
	s.Means = make([]float64, len(X))
	s.Stds = make([]float64, len(X))
	for f, col := range X {
		sum := 0.0
		for _, v := range col {
			sum += v
		}
		mean := sum / float64(n)
		varSum := 0.0
		for _, v := range col {
			d := v - mean
			varSum += d * d
		}
		std := math.Sqrt(varSum / float64(n))
		if std == 0 {
			std = 1
		}
		s.Means[f] = mean
		s.Stds[f] = std
	}
	return nil
}

// Transform returns scaled copies of the feature columns.
func (s *StandardScaler) Transform(X [][]float64) ([][]float64, error) {
	if s.Means == nil {
		return nil, ErrNotFitted
	}
	if len(X) != len(s.Means) {
		return nil, fmt.Errorf("ml: scaler fitted on %d features, got %d", len(s.Means), len(X))
	}
	out := make([][]float64, len(X))
	for f, col := range X {
		sc := make([]float64, len(col))
		m, sd := s.Means[f], s.Stds[f]
		for i, v := range col {
			sc[i] = (v - m) / sd
		}
		out[f] = sc
	}
	return out, nil
}

// FitTransform fits the scaler and transforms in one call.
func (s *StandardScaler) FitTransform(X [][]float64) ([][]float64, error) {
	if err := s.Fit(X); err != nil {
		return nil, err
	}
	return s.Transform(X)
}

// MinMaxScaler rescales features into [0, 1].
type MinMaxScaler struct {
	Mins []float64
	Maxs []float64
}

// Fit computes per-feature minima and maxima.
func (s *MinMaxScaler) Fit(X [][]float64) error {
	_, err := validateX(X)
	if err != nil {
		return err
	}
	s.Mins = make([]float64, len(X))
	s.Maxs = make([]float64, len(X))
	for f, col := range X {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range col {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		s.Mins[f], s.Maxs[f] = lo, hi
	}
	return nil
}

// Transform rescales feature columns into [0, 1].
func (s *MinMaxScaler) Transform(X [][]float64) ([][]float64, error) {
	if s.Mins == nil {
		return nil, ErrNotFitted
	}
	if len(X) != len(s.Mins) {
		return nil, fmt.Errorf("ml: scaler fitted on %d features, got %d", len(s.Mins), len(X))
	}
	out := make([][]float64, len(X))
	for f, col := range X {
		sc := make([]float64, len(col))
		lo, hi := s.Mins[f], s.Maxs[f]
		span := hi - lo
		if span == 0 {
			span = 1
		}
		for i, v := range col {
			sc[i] = (v - lo) / span
		}
		out[f] = sc
	}
	return out, nil
}

// ImputeMean replaces NaN entries with the per-feature mean of the
// non-NaN values, in place. It returns the number of imputed cells.
func ImputeMean(X [][]float64) int {
	imputed := 0
	for _, col := range X {
		sum, cnt := 0.0, 0
		for _, v := range col {
			if !math.IsNaN(v) {
				sum += v
				cnt++
			}
		}
		mean := 0.0
		if cnt > 0 {
			mean = sum / float64(cnt)
		}
		for i, v := range col {
			if math.IsNaN(v) {
				col[i] = mean
				imputed++
			}
		}
	}
	return imputed
}

// TrainTestSplit splits rows into train and test partitions with the
// given test fraction, deterministically shuffled by seed.
func TrainTestSplit(X [][]float64, y []int, testFraction float64, seed int64) (trainX [][]float64, trainY []int, testX [][]float64, testY []int, err error) {
	n, err := validateXY(X, y)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if testFraction <= 0 || testFraction >= 1 {
		return nil, nil, nil, nil, fmt.Errorf("ml: test fraction %v out of (0,1)", testFraction)
	}
	perm := newRNG(seed).Perm(n)
	nTest := int(float64(n) * testFraction)
	if nTest == 0 {
		nTest = 1
	}
	testIdx, trainIdx := perm[:nTest], perm[nTest:]
	gather := func(idx []int) ([][]float64, []int) {
		gx := make([][]float64, len(X))
		for f, col := range X {
			g := make([]float64, len(idx))
			for i, r := range idx {
				g[i] = col[r]
			}
			gx[f] = g
		}
		gy := make([]int, len(idx))
		for i, r := range idx {
			gy[i] = y[r]
		}
		return gx, gy
	}
	trainX, trainY = gather(trainIdx)
	testX, testY = gather(testIdx)
	return trainX, trainY, testX, testY, nil
}

// KFold yields k (trainIdx, testIdx) partitions of n rows,
// deterministically shuffled by seed.
func KFold(n, k int, seed int64) ([][2][]int, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("ml: k=%d folds for %d rows", k, n)
	}
	perm := newRNG(seed).Perm(n)
	folds := make([][]int, k)
	for i, r := range perm {
		folds[i%k] = append(folds[i%k], r)
	}
	out := make([][2][]int, k)
	for i := 0; i < k; i++ {
		var train []int
		for j := 0; j < k; j++ {
			if j != i {
				train = append(train, folds[j]...)
			}
		}
		out[i] = [2][]int{train, folds[i]}
	}
	return out, nil
}

// CrossValidate fits and scores the model factory over k folds,
// returning per-fold accuracies.
func CrossValidate(factory func() Classifier, X [][]float64, y []int, k int, seed int64) ([]float64, error) {
	n, err := validateXY(X, y)
	if err != nil {
		return nil, err
	}
	folds, err := KFold(n, k, seed)
	if err != nil {
		return nil, err
	}
	gather := func(idx []int) ([][]float64, []int) {
		gx := make([][]float64, len(X))
		for f, col := range X {
			g := make([]float64, len(idx))
			for i, r := range idx {
				g[i] = col[r]
			}
			gx[f] = g
		}
		gy := make([]int, len(idx))
		for i, r := range idx {
			gy[i] = y[r]
		}
		return gx, gy
	}
	scores := make([]float64, k)
	for i, fold := range folds {
		trX, trY := gather(fold[0])
		teX, teY := gather(fold[1])
		model := factory()
		if err := model.Fit(trX, trY); err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", i, err)
		}
		pred, err := model.Predict(teX)
		if err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", i, err)
		}
		acc, err := Accuracy(teY, pred)
		if err != nil {
			return nil, err
		}
		scores[i] = acc
	}
	return scores, nil
}
