package ml

import (
	"fmt"
	"math"
)

// Accuracy returns the fraction of predictions equal to the truth.
func Accuracy(truth, pred []int) (float64, error) {
	if len(truth) != len(pred) {
		return 0, fmt.Errorf("ml: %d truths vs %d predictions", len(truth), len(pred))
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("ml: empty inputs")
	}
	correct := 0
	for i := range truth {
		if truth[i] == pred[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(truth)), nil
}

// ConfusionMatrix counts [trueClassIdx][predClassIdx] occurrences over
// the sorted unique classes of truth ∪ pred. It returns the matrix and
// the class order.
func ConfusionMatrix(truth, pred []int) ([][]int, []int, error) {
	if len(truth) != len(pred) {
		return nil, nil, fmt.Errorf("ml: %d truths vs %d predictions", len(truth), len(pred))
	}
	all := append(append([]int{}, truth...), pred...)
	classes, cidx := classIndex(all)
	m := make([][]int, len(classes))
	for i := range m {
		m[i] = make([]int, len(classes))
	}
	for i := range truth {
		m[cidx[truth[i]]][cidx[pred[i]]]++
	}
	return m, classes, nil
}

// ClassReport holds per-class precision/recall/F1.
type ClassReport struct {
	Class     int
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// PrecisionRecallF1 computes per-class metrics from truth and
// predictions.
func PrecisionRecallF1(truth, pred []int) ([]ClassReport, error) {
	m, classes, err := ConfusionMatrix(truth, pred)
	if err != nil {
		return nil, err
	}
	out := make([]ClassReport, len(classes))
	for ci, c := range classes {
		tp := m[ci][ci]
		fp, fn, support := 0, 0, 0
		for k := range classes {
			if k != ci {
				fp += m[k][ci]
				fn += m[ci][k]
			}
			support += m[ci][k]
		}
		var prec, rec, f1 float64
		if tp+fp > 0 {
			prec = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			rec = float64(tp) / float64(tp+fn)
		}
		if prec+rec > 0 {
			f1 = 2 * prec * rec / (prec + rec)
		}
		out[ci] = ClassReport{Class: c, Precision: prec, Recall: rec, F1: f1, Support: support}
	}
	return out, nil
}

// LogLoss computes the cross-entropy of predicted probabilities
// against integer truths, clamping probabilities to [eps, 1-eps].
func LogLoss(truth []int, probs [][]float64, classes []int) (float64, error) {
	if len(truth) != len(probs) {
		return 0, fmt.Errorf("ml: %d truths vs %d probability rows", len(truth), len(probs))
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("ml: empty inputs")
	}
	cidx := make(map[int]int, len(classes))
	for i, c := range classes {
		cidx[c] = i
	}
	const eps = 1e-15
	total := 0.0
	for i, t := range truth {
		ci, ok := cidx[t]
		if !ok {
			return 0, fmt.Errorf("ml: truth class %d not in model classes", t)
		}
		p := probs[i][ci]
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		total -= math.Log(p)
	}
	return total / float64(len(truth)), nil
}
