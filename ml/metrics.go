package ml

import (
	"fmt"
	"math"
)

// Accuracy returns the fraction of predictions equal to the truth.
func Accuracy(truth, pred []int) (float64, error) {
	if len(truth) != len(pred) {
		return 0, fmt.Errorf("ml: %d truths vs %d predictions", len(truth), len(pred))
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("ml: empty inputs")
	}
	correct := 0
	for i := range truth {
		if truth[i] == pred[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(truth)), nil
}

// ConfusionMatrix counts [trueClassIdx][predClassIdx] occurrences over
// the sorted unique classes of truth ∪ pred. It returns the matrix and
// the class order.
func ConfusionMatrix(truth, pred []int) ([][]int, []int, error) {
	if len(truth) != len(pred) {
		return nil, nil, fmt.Errorf("ml: %d truths vs %d predictions", len(truth), len(pred))
	}
	all := append(append([]int{}, truth...), pred...)
	classes, cidx := classIndex(all)
	m := make([][]int, len(classes))
	for i := range m {
		m[i] = make([]int, len(classes))
	}
	for i := range truth {
		m[cidx[truth[i]]][cidx[pred[i]]]++
	}
	return m, classes, nil
}

// ClassReport holds per-class precision/recall/F1.
type ClassReport struct {
	Class     int
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// PrecisionRecallF1 computes per-class metrics from truth and
// predictions.
func PrecisionRecallF1(truth, pred []int) ([]ClassReport, error) {
	m, classes, err := ConfusionMatrix(truth, pred)
	if err != nil {
		return nil, err
	}
	out := make([]ClassReport, len(classes))
	for ci, c := range classes {
		tp := m[ci][ci]
		fp, fn, support := 0, 0, 0
		for k := range classes {
			if k != ci {
				fp += m[k][ci]
				fn += m[ci][k]
			}
			support += m[ci][k]
		}
		var prec, rec, f1 float64
		if tp+fp > 0 {
			prec = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			rec = float64(tp) / float64(tp+fn)
		}
		if prec+rec > 0 {
			f1 = 2 * prec * rec / (prec + rec)
		}
		out[ci] = ClassReport{Class: c, Precision: prec, Recall: rec, F1: f1, Support: support}
	}
	return out, nil
}

// EvalStats is a mergeable classification-metrics accumulator:
// confusion cells are the sufficient statistics, so per-worker stats
// collected over disjoint row ranges combine exactly (integer
// addition, any merge order) into the same metrics a single pass
// would produce.
type EvalStats struct {
	total   int64
	correct int64
	cells   map[[2]int]int64 // (truth, pred) -> count
}

// NewEvalStats returns an empty accumulator.
func NewEvalStats() *EvalStats {
	return &EvalStats{cells: make(map[[2]int]int64)}
}

// Observe records one (truth, prediction) pair.
func (s *EvalStats) Observe(truth, pred int) {
	s.total++
	if truth == pred {
		s.correct++
	}
	s.cells[[2]int{truth, pred}]++
}

// Merge adds o's counts into s.
func (s *EvalStats) Merge(o *EvalStats) {
	s.total += o.total
	s.correct += o.correct
	for k, v := range o.cells {
		s.cells[k] += v
	}
}

// Total returns the number of observed pairs.
func (s *EvalStats) Total() int64 { return s.total }

// Accuracy returns the fraction of correct predictions (0 when empty).
func (s *EvalStats) Accuracy() float64 {
	if s.total == 0 {
		return 0
	}
	return float64(s.correct) / float64(s.total)
}

// Confusion returns the confusion matrix [truthIdx][predIdx] over the
// sorted unique classes seen, and the class order — the same shape
// ConfusionMatrix produces from full label slices.
func (s *EvalStats) Confusion() ([][]int, []int) {
	seen := make([]int, 0, 2*len(s.cells))
	for k := range s.cells {
		seen = append(seen, k[0], k[1])
	}
	classes, cidx := classIndex(seen)
	m := make([][]int, len(classes))
	for i := range m {
		m[i] = make([]int, len(classes))
	}
	for k, v := range s.cells {
		m[cidx[k[0]]][cidx[k[1]]] += int(v)
	}
	return m, classes
}

// LogLoss computes the cross-entropy of predicted probabilities
// against integer truths, clamping probabilities to [eps, 1-eps].
func LogLoss(truth []int, probs [][]float64, classes []int) (float64, error) {
	if len(truth) != len(probs) {
		return 0, fmt.Errorf("ml: %d truths vs %d probability rows", len(truth), len(probs))
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("ml: empty inputs")
	}
	cidx := make(map[int]int, len(classes))
	for i, c := range classes {
		cidx[c] = i
	}
	const eps = 1e-15
	total := 0.0
	for i, t := range truth {
		ci, ok := cidx[t]
		if !ok {
			return 0, fmt.Errorf("ml: truth class %d not in model classes", t)
		}
		p := probs[i][ci]
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		total -= math.Log(p)
	}
	return total / float64(len(truth)), nil
}
