package ml

import (
	"bytes"
	"math"
	"testing"
)

// batchDataset builds a deterministic dataset with informative
// features, a few NaN cells, and 3 classes.
func batchDataset(n, nfeat int, seed int64) ([][]float64, []int) {
	r := newRNG(seed)
	X := make([][]float64, nfeat)
	for f := range X {
		X[f] = make([]float64, n)
	}
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(3)
		y[i] = c
		for f := 0; f < nfeat; f++ {
			X[f][i] = float64(c) + r.Float64()*2 - 1
		}
		if i%97 == 0 {
			X[0][i] = math.NaN()
		}
	}
	return X, y
}

// fittedModels trains one of each batch-capable classifier.
func fittedModels(t *testing.T, X [][]float64, y []int) []Classifier {
	t.Helper()
	tree := NewDecisionTree()
	tree.MaxDepth = 6
	if err := tree.Fit(X, y); err != nil {
		t.Fatalf("tree fit: %v", err)
	}
	forest := NewRandomForest(9)
	forest.Seed = 42
	if err := forest.Fit(X, y); err != nil {
		t.Fatalf("forest fit: %v", err)
	}
	nb := NewGaussianNB()
	if err := nb.Fit(X, y); err != nil {
		t.Fatalf("nb fit: %v", err)
	}
	lr := NewLogisticRegression()
	lr.Iterations = 40
	if err := lr.Fit(X, y); err != nil {
		t.Fatalf("logreg fit: %v", err)
	}
	return []Classifier{tree, forest, nb, lr}
}

// TestBatchPredictMatchesRowPath asserts the vectorized Into paths are
// bit-identical to the row-at-a-time Classifier methods, including on
// NaN-bearing features and across chunked evaluation.
func TestBatchPredictMatchesRowPath(t *testing.T) {
	X, y := batchDataset(1500, 5, 7)
	for _, clf := range fittedModels(t, X, y) {
		bp, ok := clf.(BatchPredictor)
		if !ok {
			t.Fatalf("%s: no batch path", clf.Name())
		}
		wantLabels, err := clf.Predict(X)
		if err != nil {
			t.Fatalf("%s predict: %v", clf.Name(), err)
		}
		wantProbs, err := clf.PredictProba(X)
		if err != nil {
			t.Fatalf("%s proba: %v", clf.Name(), err)
		}
		// Batch over uneven chunks: per-row arithmetic must not depend
		// on chunk boundaries.
		n := len(y)
		labels := make([]int32, n)
		conf := make([]float64, n)
		for lo := 0; lo < n; {
			hi := lo + 700
			if hi > n {
				hi = n
			}
			sub := make([][]float64, len(X))
			for f := range X {
				sub[f] = X[f][lo:hi]
			}
			if err := bp.PredictLabelsInto(sub, labels[lo:hi]); err != nil {
				t.Fatalf("%s labels into: %v", clf.Name(), err)
			}
			if err := bp.PredictConfidenceInto(sub, conf[lo:hi]); err != nil {
				t.Fatalf("%s conf into: %v", clf.Name(), err)
			}
			lo = hi
		}
		for i := range wantLabels {
			if int(labels[i]) != wantLabels[i] {
				t.Fatalf("%s: row %d label %d != %d", clf.Name(), i, labels[i], wantLabels[i])
			}
			if want := maxProb(wantProbs[i]); math.Float64bits(conf[i]) != math.Float64bits(want) {
				t.Fatalf("%s: row %d confidence %v != %v", clf.Name(), i, conf[i], want)
			}
		}
	}
}

// TestBatchPredictShapeErrors asserts Into paths validate inputs.
func TestBatchPredictShapeErrors(t *testing.T) {
	X, y := batchDataset(200, 4, 3)
	tree := NewDecisionTree()
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := tree.PredictLabelsInto(X, make([]int32, 10)); err == nil {
		t.Fatal("expected output-length mismatch error")
	}
	if err := tree.PredictLabelsInto(X[:2], make([]int32, 200)); err == nil {
		t.Fatal("expected feature-count mismatch error")
	}
	var unfitted DecisionTree
	if err := unfitted.PredictLabelsInto(X, make([]int32, 200)); err != ErrNotFitted {
		t.Fatalf("expected ErrNotFitted, got %v", err)
	}
}

// TestGenericBatchFallback covers the non-BatchPredictor path (KNN).
func TestGenericBatchFallback(t *testing.T) {
	X, y := batchDataset(300, 4, 5)
	knn := NewKNN(3)
	if err := knn.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	want, err := knn.Predict(X)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int32, len(y))
	if err := PredictLabelsInto(knn, X, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if int(got[i]) != want[i] {
			t.Fatalf("row %d: %d != %d", i, got[i], want[i])
		}
	}
	conf := make([]float64, len(y))
	if err := PredictConfidenceInto(knn, X, conf); err != nil {
		t.Fatal(err)
	}
}

// marshalWith fits via fit() and returns the serialized model bytes.
func marshalWith(t *testing.T, clf Classifier, fit func() error) []byte {
	t.Helper()
	if err := fit(); err != nil {
		t.Fatalf("fit: %v", err)
	}
	b, err := Marshal(clf)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestParallelFitDeterminism asserts every parallel trainer produces
// byte-identical models at workers 1, 2, and 8 — on NaN-bearing data.
func TestParallelFitDeterminism(t *testing.T) {
	X, y := batchDataset(5000, 5, 11)
	var base []byte
	for _, workers := range []int{1, 2, 8} {
		f := NewRandomForest(10)
		f.Seed = 3
		b := marshalWith(t, f, func() error { return f.FitWorkers(X, y, workers) })
		if base == nil {
			base = b
		} else if !bytes.Equal(base, b) {
			t.Fatalf("forest: workers=%d model differs from workers=1", workers)
		}
	}
	base = nil
	for _, workers := range []int{1, 2, 8} {
		m := NewGaussianNB()
		b := marshalWith(t, m, func() error { return m.FitParallel(X, y, workers) })
		if base == nil {
			base = b
		} else if !bytes.Equal(base, b) {
			t.Fatalf("nb: workers=%d model differs from workers=1", workers)
		}
	}
	base = nil
	for _, workers := range []int{1, 2, 8} {
		m := NewLogisticRegression()
		m.Iterations = 30
		b := marshalWith(t, m, func() error { return m.FitParallel(X, y, workers) })
		if base == nil {
			base = b
		} else if !bytes.Equal(base, b) {
			t.Fatalf("logreg: workers=%d model differs from workers=1", workers)
		}
	}
}

// TestForestPartialMerge exercises the partial-fit/merge API directly:
// two half-range partials must reassemble into the same forest Fit
// produces.
func TestForestPartialMerge(t *testing.T) {
	X, y := batchDataset(2000, 4, 13)
	whole := NewRandomForest(8)
	whole.Seed = 9
	wantBytes := marshalWith(t, whole, func() error { return whole.FitWorkers(X, y, 1) })

	merged := NewRandomForest(8)
	merged.Seed = 9
	lo, err := merged.FitPartial(X, y, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := merged.FitPartial(X, y, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order partials must still merge into tree order.
	if err := merged.MergePartials([]*ForestPartial{hi, lo}); err != nil {
		t.Fatal(err)
	}
	gotBytes, err := Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatal("merged partial forest differs from whole fit")
	}
	// Gap detection.
	bad := NewRandomForest(8)
	bad.Seed = 9
	if err := bad.MergePartials([]*ForestPartial{hi}); err == nil {
		t.Fatal("expected non-contiguous partials to fail")
	}
}

// TestNBParallelCloseToSerial sanity-checks that sufficient-statistics
// training matches the two-pass serial fit to numerical tolerance.
func TestNBParallelCloseToSerial(t *testing.T) {
	X, y := batchDataset(3000, 4, 17)
	// Strip NaNs: serial and E[x²] variance differ in NaN propagation
	// is not the point here — parameter closeness on clean data is.
	for f := range X {
		for i, v := range X[f] {
			if math.IsNaN(v) {
				X[f][i] = 0
			}
		}
	}
	serial := NewGaussianNB()
	if err := serial.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	par := NewGaussianNB()
	if err := par.FitParallel(X, y, 4); err != nil {
		t.Fatal(err)
	}
	for c := range serial.means {
		for f := range serial.means[c] {
			if d := math.Abs(serial.means[c][f] - par.means[c][f]); d > 1e-9 {
				t.Fatalf("mean[%d][%d] differs by %v", c, f, d)
			}
			if d := math.Abs(serial.vars[c][f] - par.vars[c][f]); d > 1e-6 {
				t.Fatalf("var[%d][%d] differs by %v", c, f, d)
			}
		}
	}
}

// TestEvalStatsMerge asserts merged per-range accumulators reproduce
// the single-pass metrics exactly.
func TestEvalStatsMerge(t *testing.T) {
	r := newRNG(23)
	n := 1000
	truth := make([]int, n)
	pred := make([]int, n)
	for i := range truth {
		truth[i] = r.Intn(3)
		pred[i] = r.Intn(3)
	}
	whole := NewEvalStats()
	for i := range truth {
		whole.Observe(truth[i], pred[i])
	}
	merged := NewEvalStats()
	for lo := 0; lo < n; lo += 333 {
		hi := lo + 333
		if hi > n {
			hi = n
		}
		part := NewEvalStats()
		for i := lo; i < hi; i++ {
			part.Observe(truth[i], pred[i])
		}
		merged.Merge(part)
	}
	if whole.Accuracy() != merged.Accuracy() || whole.Total() != merged.Total() {
		t.Fatal("merged accuracy differs from single pass")
	}
	wantAcc, err := Accuracy(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Accuracy() != wantAcc {
		t.Fatalf("accuracy %v != %v", merged.Accuracy(), wantAcc)
	}
	wantM, wantClasses, err := ConfusionMatrix(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	gotM, gotClasses := merged.Confusion()
	if len(gotClasses) != len(wantClasses) {
		t.Fatal("class sets differ")
	}
	for i := range wantM {
		for j := range wantM[i] {
			if gotM[i][j] != wantM[i][j] {
				t.Fatalf("confusion[%d][%d] %d != %d", i, j, gotM[i][j], wantM[i][j])
			}
		}
	}
}
