package ml

import (
	"fmt"
	"math"
	"sort"
)

// DecisionTree is a CART classification tree split on the Gini
// impurity criterion. The zero value is usable with defaults; set
// hyperparameters before Fit.
type DecisionTree struct {
	// MaxDepth bounds tree depth; 0 means unbounded.
	MaxDepth int
	// MinSamplesLeaf is the minimum rows per leaf (default 1).
	MinSamplesLeaf int
	// MaxFeatures is the number of features examined per split;
	// 0 means all features (random forests set sqrt(p)).
	MaxFeatures int
	// Seed drives feature subsampling when MaxFeatures > 0.
	Seed int64

	nodes   []treeNode
	classes []int
	nfeat   int
}

// treeNode is one node in the flattened tree. Leaves have left == -1.
type treeNode struct {
	feature   int32
	left      int32
	right     int32
	threshold float64
	// probs holds the class distribution at the node (leaves only).
	probs []float64
}

// NewDecisionTree returns a tree with common defaults (depth 12,
// one-sample leaves).
func NewDecisionTree() *DecisionTree {
	return &DecisionTree{MaxDepth: 12, MinSamplesLeaf: 1}
}

// Name implements Classifier.
func (t *DecisionTree) Name() string { return "decision_tree" }

// Classes implements Classifier.
func (t *DecisionTree) Classes() []int { return t.classes }

// Fit implements Classifier.
func (t *DecisionTree) Fit(X [][]float64, y []int) error {
	n, err := validateXY(X, y)
	if err != nil {
		return err
	}
	classes, cidx := classIndex(y)
	t.classes = classes
	t.nfeat = len(X)
	t.nodes = t.nodes[:0]
	yi := make([]int, n)
	for i, c := range y {
		yi[i] = cidx[c]
	}
	samples := make([]int, n)
	for i := range samples {
		samples[i] = i
	}
	b := &treeBuilder{
		X: X, y: yi, nclasses: len(classes), tree: t,
		minLeaf: max(1, t.MinSamplesLeaf),
		rng:     newRNG(t.Seed + 1),
	}
	b.build(samples, 0)
	return nil
}

type treeBuilder struct {
	X        [][]float64
	y        []int
	nclasses int
	tree     *DecisionTree
	minLeaf  int
	rng      *rng
}

// build grows the subtree over samples and returns its node index.
func (b *treeBuilder) build(samples []int, depth int) int32 {
	counts := make([]float64, b.nclasses)
	for _, s := range samples {
		counts[b.y[s]]++
	}
	nodeIdx := int32(len(b.tree.nodes))
	b.tree.nodes = append(b.tree.nodes, treeNode{left: -1, right: -1})

	pure := 0
	for _, c := range counts {
		if c > 0 {
			pure++
		}
	}
	stop := pure <= 1 ||
		(b.tree.MaxDepth > 0 && depth >= b.tree.MaxDepth) ||
		len(samples) < 2*b.minLeaf
	if !stop {
		feat, thresh, ok := b.bestSplit(samples, counts)
		if ok {
			var left, right []int
			for _, s := range samples {
				if b.X[feat][s] <= thresh {
					left = append(left, s)
				} else {
					right = append(right, s)
				}
			}
			if len(left) >= b.minLeaf && len(right) >= b.minLeaf {
				l := b.build(left, depth+1)
				r := b.build(right, depth+1)
				nd := &b.tree.nodes[nodeIdx]
				nd.feature = int32(feat)
				nd.threshold = thresh
				nd.left = l
				nd.right = r
				return nodeIdx
			}
		}
	}
	// Leaf: normalize counts into a class distribution.
	total := float64(len(samples))
	probs := make([]float64, b.nclasses)
	for i, c := range counts {
		probs[i] = c / total
	}
	b.tree.nodes[nodeIdx].probs = probs
	return nodeIdx
}

// bestSplit scans a (possibly random) subset of features for the
// threshold minimizing weighted Gini impurity.
func (b *treeBuilder) bestSplit(samples []int, totalCounts []float64) (int, float64, bool) {
	nfeat := len(b.X)
	featOrder := make([]int, nfeat)
	for i := range featOrder {
		featOrder[i] = i
	}
	tryFeats := nfeat
	if b.tree.MaxFeatures > 0 && b.tree.MaxFeatures < nfeat {
		tryFeats = b.tree.MaxFeatures
		// Partial Fisher-Yates to pick tryFeats random features.
		for i := 0; i < tryFeats; i++ {
			j := i + b.rng.Intn(nfeat-i)
			featOrder[i], featOrder[j] = featOrder[j], featOrder[i]
		}
	}

	n := float64(len(samples))
	bestGain := 1e-12
	bestFeat, bestThresh := -1, 0.0
	parentImp := giniImpurity(totalCounts, n)

	vals := make([]float64, len(samples))
	order := make([]int, len(samples))
	leftCounts := make([]float64, b.nclasses)
	rightCounts := make([]float64, b.nclasses)

	for fi := 0; fi < tryFeats; fi++ {
		f := featOrder[fi]
		col := b.X[f]
		for i, s := range samples {
			vals[i] = col[s]
			order[i] = i
		}
		sort.Slice(order, func(a, c int) bool { return vals[order[a]] < vals[order[c]] })

		copy(rightCounts, totalCounts)
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		nLeft := 0.0
		for i := 0; i < len(order)-1; i++ {
			s := samples[order[i]]
			cls := b.y[s]
			leftCounts[cls]++
			rightCounts[cls]--
			nLeft++
			v, vNext := vals[order[i]], vals[order[i+1]]
			if v == vNext {
				continue // cannot split between equal values
			}
			nRight := n - nLeft
			if int(nLeft) < b.minLeaf || int(nRight) < b.minLeaf {
				continue
			}
			imp := (nLeft*giniImpurity(leftCounts, nLeft) + nRight*giniImpurity(rightCounts, nRight)) / n
			gain := parentImp - imp
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (v + vNext) / 2
			}
		}
	}
	if bestFeat < 0 {
		return 0, 0, false
	}
	return bestFeat, bestThresh, true
}

func giniImpurity(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	sumSq := 0.0
	for _, c := range counts {
		p := c / n
		sumSq += p * p
	}
	return 1 - sumSq
}

// predictRowProbs walks the tree for one row.
func (t *DecisionTree) predictRowProbs(x []float64) []float64 {
	i := int32(0)
	for {
		nd := &t.nodes[i]
		if nd.left < 0 {
			return nd.probs
		}
		if x[nd.feature] <= nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(X [][]float64) ([]int, error) {
	probs, err := t.PredictProba(X)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(probs))
	for i, p := range probs {
		out[i] = t.classes[argmax(p)]
	}
	return out, nil
}

// PredictProba implements Classifier.
func (t *DecisionTree) PredictProba(X [][]float64) ([][]float64, error) {
	if len(t.nodes) == 0 {
		return nil, ErrNotFitted
	}
	n, err := validateX(X)
	if err != nil {
		return nil, err
	}
	if len(X) != t.nfeat {
		return nil, fmt.Errorf("ml: tree fitted on %d features, got %d", t.nfeat, len(X))
	}
	out := make([][]float64, n)
	buf := make([]float64, 0, t.nfeat)
	for r := 0; r < n; r++ {
		buf = row(X, r, buf)
		p := t.predictRowProbs(buf)
		out[r] = append([]float64(nil), p...)
	}
	return out, nil
}

// Depth returns the maximum depth of the fitted tree (0 for a stump).
func (t *DecisionTree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var depth func(i int32) int
	depth = func(i int32) int {
		nd := &t.nodes[i]
		if nd.left < 0 {
			return 0
		}
		l, r := depth(nd.left), depth(nd.right)
		return 1 + int(math.Max(float64(l), float64(r)))
	}
	return depth(0)
}

// NumNodes returns the number of nodes in the fitted tree.
func (t *DecisionTree) NumNodes() int { return len(t.nodes) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
