package ml

// rng is a small deterministic xorshift64* random number generator.
// The package avoids math/rand so model training is reproducible
// across Go versions and so per-tree generators are cheap.
type rng struct {
	state uint64
}

func newRNG(seed int64) *rng {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &rng{state: s}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform int in [0, n).
func (r *rng) Intn(n int) int {
	if n <= 0 {
		panic("ml: Intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *rng) Float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Perm returns a random permutation of [0, n).
func (r *rng) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
