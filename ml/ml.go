// Package ml is a from-scratch, stdlib-only machine-learning library
// playing the role scikit-learn plays in the paper: classification
// models with a uniform fit/predict interface, model metrics,
// preprocessing helpers, and versioned binary model serialization (the
// pickle analog) so trained models can be stored in BLOB columns
// inside the database and later deserialized inside prediction UDFs.
//
// Feature matrices are column-major ([][]float64 indexed as
// [feature][row]), matching how a column store hands vectors to UDFs.
package ml

import (
	"errors"
	"fmt"
	"sort"
)

// Classifier is the uniform interface of all models in this package.
type Classifier interface {
	// Fit trains the model on column-major features X and integer
	// class labels y (len(y) == len(X[i]) for every feature i).
	Fit(X [][]float64, y []int) error
	// Predict returns the predicted class label for each row.
	Predict(X [][]float64) ([]int, error)
	// PredictProba returns per-row class probabilities, indexed
	// [row][classIndex] following Classes() order.
	PredictProba(X [][]float64) ([][]float64, error)
	// Classes returns the sorted class labels seen during Fit.
	Classes() []int
	// Name returns the algorithm name, e.g. "random_forest".
	Name() string
}

// ErrNotFitted is returned by Predict on an untrained model.
var ErrNotFitted = errors.New("ml: model is not fitted")

// validateX checks a column-major feature matrix for consistent
// column lengths and returns the row count.
func validateX(X [][]float64) (int, error) {
	if len(X) == 0 {
		return 0, fmt.Errorf("ml: empty feature matrix")
	}
	n := len(X[0])
	for i, col := range X {
		if len(col) != n {
			return 0, fmt.Errorf("ml: feature %d has %d rows, feature 0 has %d", i, len(col), n)
		}
	}
	return n, nil
}

func validateXY(X [][]float64, y []int) (int, error) {
	n, err := validateX(X)
	if err != nil {
		return 0, err
	}
	if len(y) != n {
		return 0, fmt.Errorf("ml: %d labels for %d rows", len(y), n)
	}
	if n == 0 {
		return 0, fmt.Errorf("ml: cannot fit on zero rows")
	}
	return n, nil
}

// classIndex builds the sorted unique class list and a label->index map.
func classIndex(y []int) ([]int, map[int]int) {
	seen := make(map[int]bool)
	for _, c := range y {
		seen[c] = true
	}
	classes := make([]int, 0, len(seen))
	for c := range seen {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	idx := make(map[int]int, len(classes))
	for i, c := range classes {
		idx[c] = i
	}
	return classes, idx
}

// row extracts row r of a column-major matrix into dst (reused buffer).
func row(X [][]float64, r int, dst []float64) []float64 {
	dst = dst[:0]
	for _, col := range X {
		dst = append(dst, col[r])
	}
	return dst
}

// argmax returns the index of the largest value (first on ties).
func argmax(v []float64) int {
	best, bi := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] > best {
			best, bi = v[i], i
		}
	}
	return bi
}
