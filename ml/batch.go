package ml

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Batch prediction: the vectorized scoring path used by the engine's
// streaming PREDICT operator. The Into variants write results into
// caller-owned output slices and keep all intermediate state in pooled
// scratch buffers, so scoring one chunk allocates nothing proportional
// to the chunk — no per-row feature extraction and no [][]float64
// probability boxing. Tree descent runs root-to-leaf per row over the
// chunk's columnar feature slices: one chunk's columns fit in cache,
// so the dependent node-chase stays L1/L2-hot, which profiles faster
// than a level-synchronous sweep (whose per-level passes touch up to
// a full tree level of nodes per row batch and fall out of L1).
//
// All batch paths are arithmetically identical to the row-at-a-time
// Classifier methods (same operations in the same order per row), so
// batch and row predictions agree bit-for-bit.

// BatchPredictor is implemented by models with a vectorized scoring
// path. PredictLabelsInto writes the predicted class label of each row
// into out (len(out) must equal the row count); PredictConfidenceInto
// writes the winning class probability.
type BatchPredictor interface {
	PredictLabelsInto(X [][]float64, out []int32) error
	PredictConfidenceInto(X [][]float64, out []float64) error
}

// PredictLabelsInto scores X with c's vectorized batch path when it
// has one, falling back to the row-at-a-time Classifier interface.
func PredictLabelsInto(c Classifier, X [][]float64, out []int32) error {
	if bp, ok := c.(BatchPredictor); ok {
		return bp.PredictLabelsInto(X, out)
	}
	labels, err := c.Predict(X)
	if err != nil {
		return err
	}
	if len(labels) != len(out) {
		return fmt.Errorf("ml: %d predictions for %d output rows", len(labels), len(out))
	}
	for i, l := range labels {
		out[i] = int32(l)
	}
	return nil
}

// PredictConfidenceInto writes each row's winning class probability,
// using c's batch path when available.
func PredictConfidenceInto(c Classifier, X [][]float64, out []float64) error {
	if bp, ok := c.(BatchPredictor); ok {
		return bp.PredictConfidenceInto(X, out)
	}
	probs, err := c.PredictProba(X)
	if err != nil {
		return err
	}
	if len(probs) != len(out) {
		return fmt.Errorf("ml: %d predictions for %d output rows", len(probs), len(out))
	}
	for i, p := range probs {
		out[i] = maxProb(p)
	}
	return nil
}

// maxProb is the confidence reduction: the largest probability,
// scanning in class order (first wins ties).
func maxProb(p []float64) float64 {
	best := p[0]
	for _, v := range p[1:] {
		if v > best {
			best = v
		}
	}
	return best
}

// ------------------------------------------------------------ scratch

// Scratch buffers are pooled so chunk-at-a-time scoring does not
// allocate per call. Slices are returned unzeroed; users must
// initialize what they read.

var (
	floatsPool = sync.Pool{New: func() any { return new([]float64) }}
	int32sPool = sync.Pool{New: func() any { return new([]int32) }}
)

func getFloats(n int) *[]float64 {
	p := floatsPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putFloats(p *[]float64) { floatsPool.Put(p) }

func getInt32s(n int) *[]int32 {
	p := int32sPool.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return p
}

func putInt32s(p *[]int32) { int32sPool.Put(p) }

// ------------------------------------------------------------ tree

// checkBatch validates a batch-predict input against the fitted model
// shape and the output length, returning the row count.
func checkBatch(fitted bool, nfeat int, X [][]float64, outLen int) (int, error) {
	if !fitted {
		return 0, ErrNotFitted
	}
	n, err := validateX(X)
	if err != nil {
		return 0, err
	}
	if len(X) != nfeat {
		return 0, fmt.Errorf("ml: model fitted on %d features, got %d", nfeat, len(X))
	}
	if outLen != n {
		return 0, fmt.Errorf("ml: output has %d rows, input has %d", outLen, n)
	}
	return n, nil
}

// batchLeaves walks every row of X to its leaf, writing the leaf node
// index into cur[r]. The descent reads features straight from the
// chunk's columnar slices — no per-row gather — and the whole chunk's
// columns stay cache-resident across rows. NaN feature values compare
// false and descend right, exactly as the row-at-a-time walk does.
func (t *DecisionTree) batchLeaves(X [][]float64, cur []int32) {
	nodes := t.nodes
	for r := range cur {
		i := int32(0)
		for {
			nd := &nodes[i]
			if nd.left < 0 {
				break
			}
			if X[nd.feature][r] <= nd.threshold {
				i = nd.left
			} else {
				i = nd.right
			}
		}
		cur[r] = i
	}
}

// PredictLabelsInto implements BatchPredictor.
func (t *DecisionTree) PredictLabelsInto(X [][]float64, out []int32) error {
	n, err := checkBatch(len(t.nodes) > 0, t.nfeat, X, len(out))
	if err != nil {
		return err
	}
	curp := getInt32s(n)
	cur := *curp
	t.batchLeaves(X, cur)
	for r := 0; r < n; r++ {
		out[r] = int32(t.classes[argmax(t.nodes[cur[r]].probs)])
	}
	putInt32s(curp)
	return nil
}

// PredictConfidenceInto implements BatchPredictor.
func (t *DecisionTree) PredictConfidenceInto(X [][]float64, out []float64) error {
	n, err := checkBatch(len(t.nodes) > 0, t.nfeat, X, len(out))
	if err != nil {
		return err
	}
	curp := getInt32s(n)
	cur := *curp
	t.batchLeaves(X, cur)
	for r := 0; r < n; r++ {
		out[r] = maxProb(t.nodes[cur[r]].probs)
	}
	putInt32s(curp)
	return nil
}

// ------------------------------------------------------------ forest

// preparedForest is a read-only, traversal-optimized copy of a fitted
// forest, built once per model and cached on the RandomForest (the
// engine's model cache keeps the classifier instance alive across
// chunks, so the preparation cost amortizes over the whole scan).
// Each node's split fields fuse into one 16-byte struct, so a visit
// loads one cache line and pays one bounds check instead of spreading
// the node across four parallel slices, and nodes lay out in
// height-2 van Emde Boas blocks — every internal node shares a
// four-slot (64-byte) block with its two children, so a descent
// crosses into a new cache line only every other level. Leaves
// self-loop with a NaN threshold: NaN <= NaN is false, so a finished
// row keeps selecting its own index. That removes the leaf check from
// the hot loop — every walk runs the tree's full depth with a
// branchless child select — which lets several walks interleave in
// registers. Each root-to-leaf chase is a serial chain of dependent
// loads; interleaved independent chains keep the load units busy
// instead of stalling on one chain's latency. This is the
// batch-traversal core of the streaming PREDICT operator.
type preparedForest struct {
	trees []preparedTree
	// order lists tree indices sorted by depth, so interleaved walk
	// groups hold trees of similar depth and shallow trees don't
	// self-loop through a deep partner's remaining levels. Walk order
	// is free to differ from tree order: leaves are collected per tree
	// and accumulated by index afterwards.
	order []int32
}

// pnode is one prepared split: compare buf[feat] <= thresh, descend
// left on true, right on false (NaN falls right). The feature and the
// two child indices pack into one word — feat<<48 | left<<24 | right
// — so a node is 16 bytes, four per cache line: unpacking costs a few
// ALU ops, which is far cheaper than the extra cache misses of a
// wider node on a forest whose node arrays overflow L2.
type pnode struct {
	thresh float64
	pack   uint64
}

// packNode encodes the traversal fields; 24-bit child indices cap a
// tree at 16M nodes.
func packNode(feat, left, right int32) uint64 {
	return uint64(feat)<<48 | uint64(left)<<24 | uint64(right)
}

// cmovBarrier is always 1.0, but the compiler must assume otherwise.
// Multiplying a child index by it (exact for indices < 2^24) hides
// from the compiler that the selected index computes the next node's
// load address: branchelim refuses to emit CMOV for values feeding
// load addresses (it prefers a predictable branch there), yet tree
// descent branches are data-dependent coin flips, so the mispredict
// flush every other visit costs far more than the conversion hop.
var cmovBarrier = 1.0

type preparedTree struct {
	depth int
	nodes []pnode
	probs []float64 // flattened node*k leaf distributions
}

// prepared returns the traversal-optimized form, building it on first
// use. Concurrent builders may race benignly (the build is
// deterministic and idempotent); fitting stores a fresh nil pointer.
func (f *RandomForest) prepared() *preparedForest {
	if p := f.prep.Load(); p != nil {
		return p
	}
	k := len(f.classes)
	pf := &preparedForest{trees: make([]preparedTree, len(f.trees))}
	for ti, t := range f.trees {
		pf.trees[ti] = prepareTree(t, k)
	}
	pf.order = make([]int32, len(pf.trees))
	for i := range pf.order {
		pf.order[i] = int32(i)
	}
	sort.SliceStable(pf.order, func(a, b int) bool {
		return pf.trees[pf.order[a]].depth < pf.trees[pf.order[b]].depth
	})
	f.prep.Store(pf)
	return pf
}

// prepareTree builds the blocked, packed traversal form of one fitted
// tree. Internal nodes emit in height-2 van Emde Boas blocks: a node
// occupies slot 4b and its children slots 4b+1 and 4b+2, so every
// parent-to-child step stays inside one 64-byte cache line and a
// descent crosses lines only every other level (node arrays above
// Go's large-object threshold are page-aligned). Grandchildren start
// blocks of their own; leaves that fall on block roots have no
// children to co-locate, so they pack densely at the tail. The
// permutation is invisible to callers — child indices rewrite to the
// new slots, and the walk itself is unchanged.
func prepareTree(t *DecisionTree, k int) preparedTree {
	nn := len(t.nodes)
	if nn == 0 {
		return preparedTree{}
	}
	perm := make([]int32, nn)
	blocks := make([]int32, 0, nn/2+1)
	lone := make([]int32, 0, 4)
	addRoot := func(v int32) {
		if t.nodes[v].left < 0 {
			lone = append(lone, v)
		} else {
			blocks = append(blocks, v)
		}
	}
	addRoot(0)
	for bi := 0; bi < len(blocks); bi++ {
		v := blocks[bi]
		nd := &t.nodes[v]
		perm[v] = int32(bi * 4)
		perm[nd.left] = int32(bi*4 + 1)
		perm[nd.right] = int32(bi*4 + 2)
		if c := &t.nodes[nd.left]; c.left >= 0 {
			addRoot(c.left)
			addRoot(c.right)
		}
		if c := &t.nodes[nd.right]; c.left >= 0 {
			addRoot(c.left)
			addRoot(c.right)
		}
	}
	base := int32(len(blocks) * 4)
	for j, v := range lone {
		perm[v] = base + int32(j)
	}
	total := int(base) + len(lone)
	pt := preparedTree{
		depth: t.Depth(),
		nodes: make([]pnode, total),
		probs: make([]float64, total*k),
	}
	// Prefill every slot as a self-looping terminal; leaves keep it
	// (their probs copy in below) and padding slots are never visited.
	for i := range pt.nodes {
		pt.nodes[i] = pnode{thresh: math.NaN(), pack: packNode(0, int32(i), int32(i))}
	}
	for orig := range t.nodes {
		nd := &t.nodes[orig]
		ni := int(perm[orig])
		if nd.left < 0 {
			copy(pt.probs[ni*k:(ni+1)*k], nd.probs)
		} else {
			pt.nodes[ni] = pnode{thresh: nd.threshold, pack: packNode(nd.feature, perm[nd.left], perm[nd.right])}
		}
	}
	return pt
}

// walk1 descends one prepared tree for one row against the
// L1-resident feature buffer. The child select compiles branch-free;
// NaN features compare false and descend right, exactly as the
// row-at-a-time walk does.
func (t *preparedTree) walk1(buf []float64) int32 {
	nodes := t.nodes
	fb := cmovBarrier
	var i int32
	for d := 0; d < t.depth; d++ {
		nd := &nodes[i]
		p := nd.pack
		l := int32(p>>24) & 0xFFFFFF
		next := int32(p) & 0xFFFFFF
		if buf[p>>48] <= nd.thresh {
			next = l
		}
		i = int32(float64(next) * fb)
	}
	return i
}

// accumProbs fills acc (row-major n×k) with the scaled sum of the
// trees' leaf distributions, using the prepared traversal. Per row,
// trees descend four at a time in depth-sorted walk order: each
// root-to-leaf chase is a serial chain of dependent node loads, but
// the four trees' chains are independent, so interleaving keeps
// several loads in flight instead of stalling on one tree's latency,
// and grouping by depth keeps the fixed-trip walks tight. Features
// come from a small L1-resident row buffer; cur collects each tree's
// leaf. Leaf distributions then accumulate in tree index order, so
// every acc cell sees the same addition sequence as the row-at-a-time
// path.
func (f *RandomForest) accumProbs(X [][]float64, n int, acc []float64, buf []float64, cur []int32) {
	k := len(f.classes)
	pf := f.prepared()
	trees := pf.trees
	order := pf.order
	nt := len(trees)
	inv := 1 / float64(nt)
	fb := cmovBarrier
	for r := 0; r < n; r++ {
		for c := range buf {
			buf[c] = X[c][r]
		}
		tt := 0
		for ; tt+8 <= nt; tt += 8 {
			o0, o1, o2, o3 := order[tt], order[tt+1], order[tt+2], order[tt+3]
			o4, o5, o6, o7 := order[tt+4], order[tt+5], order[tt+6], order[tt+7]
			t0, t1, t2, t3 := trees[o0].nodes, trees[o1].nodes, trees[o2].nodes, trees[o3].nodes
			t4, t5, t6, t7 := trees[o4].nodes, trees[o5].nodes, trees[o6].nodes, trees[o7].nodes
			d := trees[o7].depth // deepest of the group: order is depth-sorted
			var i0, i1, i2, i3, i4, i5, i6, i7 int32
			for ; d > 0; d-- {
				n0, n1, n2, n3 := &t0[i0], &t1[i1], &t2[i2], &t3[i3]
				n4, n5, n6, n7 := &t4[i4], &t5[i5], &t6[i6], &t7[i7]
				p0, p1, p2, p3 := n0.pack, n1.pack, n2.pack, n3.pack
				p4, p5, p6, p7 := n4.pack, n5.pack, n6.pack, n7.pack
				// Pre-computing both children keeps each select a bare
				// value assignment, which the compiler turns into CMOV;
				// an expression in the if-body compiles to a
				// data-dependent branch that mispredicts half the time.
				l0, l1, l2, l3 := int32(p0>>24)&0xFFFFFF, int32(p1>>24)&0xFFFFFF, int32(p2>>24)&0xFFFFFF, int32(p3>>24)&0xFFFFFF
				l4, l5, l6, l7 := int32(p4>>24)&0xFFFFFF, int32(p5>>24)&0xFFFFFF, int32(p6>>24)&0xFFFFFF, int32(p7>>24)&0xFFFFFF
				j0, j1, j2, j3 := int32(p0)&0xFFFFFF, int32(p1)&0xFFFFFF, int32(p2)&0xFFFFFF, int32(p3)&0xFFFFFF
				j4, j5, j6, j7 := int32(p4)&0xFFFFFF, int32(p5)&0xFFFFFF, int32(p6)&0xFFFFFF, int32(p7)&0xFFFFFF
				if buf[p0>>48] <= n0.thresh {
					j0 = l0
				}
				if buf[p1>>48] <= n1.thresh {
					j1 = l1
				}
				if buf[p2>>48] <= n2.thresh {
					j2 = l2
				}
				if buf[p3>>48] <= n3.thresh {
					j3 = l3
				}
				if buf[p4>>48] <= n4.thresh {
					j4 = l4
				}
				if buf[p5>>48] <= n5.thresh {
					j5 = l5
				}
				if buf[p6>>48] <= n6.thresh {
					j6 = l6
				}
				if buf[p7>>48] <= n7.thresh {
					j7 = l7
				}
				i0, i1 = int32(float64(j0)*fb), int32(float64(j1)*fb)
				i2, i3 = int32(float64(j2)*fb), int32(float64(j3)*fb)
				i4, i5 = int32(float64(j4)*fb), int32(float64(j5)*fb)
				i6, i7 = int32(float64(j6)*fb), int32(float64(j7)*fb)
			}
			cur[o0], cur[o1], cur[o2], cur[o3] = i0, i1, i2, i3
			cur[o4], cur[o5], cur[o6], cur[o7] = i4, i5, i6, i7
		}
		for ; tt+4 <= nt; tt += 4 {
			o0, o1, o2, o3 := order[tt], order[tt+1], order[tt+2], order[tt+3]
			t0, t1, t2, t3 := trees[o0].nodes, trees[o1].nodes, trees[o2].nodes, trees[o3].nodes
			d := trees[o3].depth // deepest of the group: order is depth-sorted
			var i0, i1, i2, i3 int32
			for ; d > 0; d-- {
				n0, n1, n2, n3 := &t0[i0], &t1[i1], &t2[i2], &t3[i3]
				p0, p1, p2, p3 := n0.pack, n1.pack, n2.pack, n3.pack
				l0, l1, l2, l3 := int32(p0>>24)&0xFFFFFF, int32(p1>>24)&0xFFFFFF, int32(p2>>24)&0xFFFFFF, int32(p3>>24)&0xFFFFFF
				j0, j1, j2, j3 := int32(p0)&0xFFFFFF, int32(p1)&0xFFFFFF, int32(p2)&0xFFFFFF, int32(p3)&0xFFFFFF
				if buf[p0>>48] <= n0.thresh {
					j0 = l0
				}
				if buf[p1>>48] <= n1.thresh {
					j1 = l1
				}
				if buf[p2>>48] <= n2.thresh {
					j2 = l2
				}
				if buf[p3>>48] <= n3.thresh {
					j3 = l3
				}
				i0, i1 = int32(float64(j0)*fb), int32(float64(j1)*fb)
				i2, i3 = int32(float64(j2)*fb), int32(float64(j3)*fb)
			}
			cur[o0], cur[o1], cur[o2], cur[o3] = i0, i1, i2, i3
		}
		for ; tt < nt; tt++ {
			o := order[tt]
			cur[o] = trees[o].walk1(buf)
		}
		a := acc[r*k : r*k+k]
		for c := range a {
			a[c] = 0
		}
		for t := 0; t < nt; t++ {
			p := trees[t].probs[int(cur[t])*k:]
			for c := range a {
				a[c] += p[c]
			}
		}
		for c := range a {
			a[c] *= inv
		}
	}
}

// PredictLabelsInto implements BatchPredictor.
func (f *RandomForest) PredictLabelsInto(X [][]float64, out []int32) error {
	n, err := checkBatch(len(f.trees) > 0, f.nfeat, X, len(out))
	if err != nil {
		return err
	}
	k := len(f.classes)
	accp, bufp, curp := getFloats(n*k), getFloats(f.nfeat), getInt32s(len(f.trees))
	f.accumProbs(X, n, *accp, *bufp, *curp)
	acc := *accp
	for r := 0; r < n; r++ {
		out[r] = int32(f.classes[argmax(acc[r*k:r*k+k])])
	}
	putFloats(accp)
	putFloats(bufp)
	putInt32s(curp)
	return nil
}

// PredictConfidenceInto implements BatchPredictor.
func (f *RandomForest) PredictConfidenceInto(X [][]float64, out []float64) error {
	n, err := checkBatch(len(f.trees) > 0, f.nfeat, X, len(out))
	if err != nil {
		return err
	}
	k := len(f.classes)
	accp, bufp, curp := getFloats(n*k), getFloats(f.nfeat), getInt32s(len(f.trees))
	f.accumProbs(X, n, *accp, *bufp, *curp)
	acc := *accp
	for r := 0; r < n; r++ {
		out[r] = maxProb(acc[r*k : r*k+k])
	}
	putFloats(accp)
	putFloats(bufp)
	putInt32s(curp)
	return nil
}

// ------------------------------------------------------------ naive bayes

// classLogProbs fills logp with the per-class joint log-likelihood of
// row r — the same arithmetic as PredictProba's inner loop.
func (m *GaussianNB) classLogProbs(X [][]float64, r int, logp []float64) {
	for c := range logp {
		lp := m.priors[c]
		means, vars := m.means[c], m.vars[c]
		for f := 0; f < m.nfeat; f++ {
			v := vars[f]
			d := X[f][r] - means[f]
			lp += -0.5*math.Log(2*math.Pi*v) - d*d/(2*v)
		}
		logp[c] = lp
	}
}

// PredictLabelsInto implements BatchPredictor.
func (m *GaussianNB) PredictLabelsInto(X [][]float64, out []int32) error {
	n, err := checkBatch(m.means != nil, m.nfeat, X, len(out))
	if err != nil {
		return err
	}
	k := len(m.classes)
	logpp, probsp := getFloats(k), getFloats(k)
	logp, probs := *logpp, *probsp
	for r := 0; r < n; r++ {
		m.classLogProbs(X, r, logp)
		softmaxInto(logp, probs)
		out[r] = int32(m.classes[argmax(probs)])
	}
	putFloats(logpp)
	putFloats(probsp)
	return nil
}

// PredictConfidenceInto implements BatchPredictor.
func (m *GaussianNB) PredictConfidenceInto(X [][]float64, out []float64) error {
	n, err := checkBatch(m.means != nil, m.nfeat, X, len(out))
	if err != nil {
		return err
	}
	k := len(m.classes)
	logpp, probsp := getFloats(k), getFloats(k)
	logp, probs := *logpp, *probsp
	for r := 0; r < n; r++ {
		m.classLogProbs(X, r, logp)
		softmaxInto(logp, probs)
		out[r] = maxProb(probs)
	}
	putFloats(logpp)
	putFloats(probsp)
	return nil
}

// ------------------------------------------------------------ logreg

// probsInto fills probs (row-major n×k) with the normalized
// one-vs-rest scores of every row — the same column-wise arithmetic as
// PredictProba, written into caller scratch.
func (m *LogisticRegression) probsInto(X [][]float64, n int, probs, scores []float64) {
	p := m.nfeat
	k := len(m.weights)
	for ki, w := range m.weights {
		for i := 0; i < n; i++ {
			scores[i] = w[p]
		}
		for f := 0; f < p; f++ {
			wf := w[f]
			if wf == 0 {
				continue
			}
			col := X[f]
			for i := 0; i < n; i++ {
				scores[i] += wf * col[i]
			}
		}
		for i := 0; i < n; i++ {
			probs[i*k+ki] = sigmoid(scores[i])
		}
	}
	for r := 0; r < n; r++ {
		row := probs[r*k : r*k+k]
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum > 0 {
			for c := range row {
				row[c] /= sum
			}
		}
	}
}

// PredictLabelsInto implements BatchPredictor.
func (m *LogisticRegression) PredictLabelsInto(X [][]float64, out []int32) error {
	n, err := checkBatch(m.weights != nil, m.nfeat, X, len(out))
	if err != nil {
		return err
	}
	k := len(m.classes)
	probsp, scoresp := getFloats(n*k), getFloats(n)
	m.probsInto(X, n, *probsp, *scoresp)
	probs := *probsp
	for r := 0; r < n; r++ {
		out[r] = int32(m.classes[argmax(probs[r*k:r*k+k])])
	}
	putFloats(probsp)
	putFloats(scoresp)
	return nil
}

// PredictConfidenceInto implements BatchPredictor.
func (m *LogisticRegression) PredictConfidenceInto(X [][]float64, out []float64) error {
	n, err := checkBatch(m.weights != nil, m.nfeat, X, len(out))
	if err != nil {
		return err
	}
	k := len(m.classes)
	probsp, scoresp := getFloats(n*k), getFloats(n)
	m.probsInto(X, n, *probsp, *scoresp)
	probs := *probsp
	for r := 0; r < n; r++ {
		out[r] = maxProb(probs[r*k : r*k+k])
	}
	putFloats(probsp)
	putFloats(scoresp)
	return nil
}

var (
	_ BatchPredictor = (*DecisionTree)(nil)
	_ BatchPredictor = (*RandomForest)(nil)
	_ BatchPredictor = (*GaussianNB)(nil)
	_ BatchPredictor = (*LogisticRegression)(nil)
)
