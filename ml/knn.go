package ml

import (
	"container/heap"
	"fmt"
	"math"
)

// KNN is a brute-force k-nearest-neighbours classifier with Euclidean
// distance. Fit stores the training data; Predict scans it.
type KNN struct {
	// K is the neighbour count (default 5).
	K int

	trainX  [][]float64 // column-major
	trainY  []int       // class indices
	classes []int
	nfeat   int
}

// NewKNN returns a k-nearest-neighbours model.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Name implements Classifier.
func (m *KNN) Name() string { return "knn" }

// Classes implements Classifier.
func (m *KNN) Classes() []int { return m.classes }

// Fit implements Classifier (stores a copy of the training set).
func (m *KNN) Fit(X [][]float64, y []int) error {
	_, err := validateXY(X, y)
	if err != nil {
		return err
	}
	if m.K <= 0 {
		m.K = 5
	}
	classes, cidx := classIndex(y)
	m.classes = classes
	m.nfeat = len(X)
	m.trainX = make([][]float64, len(X))
	for i, col := range X {
		m.trainX[i] = append([]float64(nil), col...)
	}
	m.trainY = make([]int, len(y))
	for i, c := range y {
		m.trainY[i] = cidx[c]
	}
	return nil
}

// distHeap is a max-heap of (distance, trainRow) keeping the K
// nearest seen so far.
type distHeap []distEntry

type distEntry struct {
	d   float64
	row int
}

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d > h[j].d } // max-heap
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// PredictProba implements Classifier: neighbour vote fractions.
func (m *KNN) PredictProba(X [][]float64) ([][]float64, error) {
	if m.trainX == nil {
		return nil, ErrNotFitted
	}
	n, err := validateX(X)
	if err != nil {
		return nil, err
	}
	if len(X) != m.nfeat {
		return nil, fmt.Errorf("ml: model fitted on %d features, got %d", m.nfeat, len(X))
	}
	ntrain := len(m.trainY)
	k := m.K
	if k > ntrain {
		k = ntrain
	}
	out := make([][]float64, n)
	q := make([]float64, m.nfeat)
	for r := 0; r < n; r++ {
		for f := 0; f < m.nfeat; f++ {
			q[f] = X[f][r]
		}
		h := make(distHeap, 0, k+1)
		for t := 0; t < ntrain; t++ {
			d := 0.0
			for f := 0; f < m.nfeat; f++ {
				diff := q[f] - m.trainX[f][t]
				d += diff * diff
			}
			if len(h) < k {
				heap.Push(&h, distEntry{d: d, row: t})
			} else if d < h[0].d {
				h[0] = distEntry{d: d, row: t}
				heap.Fix(&h, 0)
			}
		}
		votes := make([]float64, len(m.classes))
		for _, e := range h {
			votes[m.trainY[e.row]]++
		}
		inv := 1 / math.Max(1, float64(len(h)))
		for i := range votes {
			votes[i] *= inv
		}
		out[r] = votes
	}
	return out, nil
}

// Predict implements Classifier.
func (m *KNN) Predict(X [][]float64) ([]int, error) {
	probs, err := m.PredictProba(X)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(probs))
	for i, p := range probs {
		out[i] = m.classes[argmax(p)]
	}
	return out, nil
}
