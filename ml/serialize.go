package ml

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Model serialization: the pickle analog of the paper. Marshal turns a
// fitted Classifier into a self-describing versioned binary blob that
// can be stored in a BLOB column; Unmarshal restores it inside a
// prediction UDF. Format (little-endian):
//
//	magic   [4]byte "VXML"
//	version uint16 (currently 1)
//	kind    uint8 (model type tag)
//	payload model-specific
var modelMagic = [4]byte{'V', 'X', 'M', 'L'}

const serializeVersion = 1

// Model type tags.
const (
	kindDecisionTree uint8 = iota + 1
	kindRandomForest
	kindLogReg
	kindGaussianNB
	kindKNN
)

// Marshal serializes a fitted model to its binary representation.
func Marshal(c Classifier) ([]byte, error) {
	w := &writer{}
	w.bytes(modelMagic[:])
	w.u16(serializeVersion)
	switch m := c.(type) {
	case *DecisionTree:
		w.u8(kindDecisionTree)
		marshalTree(w, m)
	case *RandomForest:
		if len(m.trees) == 0 {
			return nil, ErrNotFitted
		}
		w.u8(kindRandomForest)
		w.i64(int64(m.NEstimators))
		w.i64(int64(m.MaxDepth))
		w.i64(int64(m.MinSamplesLeaf))
		w.i64(int64(m.MaxFeatures))
		w.i64(m.Seed)
		w.ints(m.classes)
		w.i64(int64(m.nfeat))
		w.i64(int64(len(m.trees)))
		for _, t := range m.trees {
			marshalTree(w, t)
		}
	case *LogisticRegression:
		if m.weights == nil {
			return nil, ErrNotFitted
		}
		w.u8(kindLogReg)
		w.f64(m.LearningRate)
		w.i64(int64(m.Iterations))
		w.f64(m.L2)
		w.ints(m.classes)
		w.i64(int64(m.nfeat))
		w.i64(int64(len(m.weights)))
		for _, wv := range m.weights {
			w.floats(wv)
		}
	case *GaussianNB:
		if m.means == nil {
			return nil, ErrNotFitted
		}
		w.u8(kindGaussianNB)
		w.f64(m.VarSmoothing)
		w.ints(m.classes)
		w.i64(int64(m.nfeat))
		w.floats(m.priors)
		w.i64(int64(len(m.means)))
		for i := range m.means {
			w.floats(m.means[i])
			w.floats(m.vars[i])
		}
	case *KNN:
		if m.trainX == nil {
			return nil, ErrNotFitted
		}
		w.u8(kindKNN)
		w.i64(int64(m.K))
		w.ints(m.classes)
		w.i64(int64(m.nfeat))
		w.i64(int64(len(m.trainX)))
		for _, col := range m.trainX {
			w.floats(col)
		}
		w.ints(m.trainY)
	default:
		return nil, fmt.Errorf("ml: cannot marshal %T", c)
	}
	return w.buf, nil
}

func marshalTree(w *writer, t *DecisionTree) {
	if len(t.nodes) == 0 {
		// An unfitted tree marshals with zero nodes; Unmarshal yields
		// an unfitted tree.
		w.i64(int64(t.MaxDepth))
		w.i64(int64(t.MinSamplesLeaf))
		w.i64(int64(t.MaxFeatures))
		w.i64(t.Seed)
		w.ints(nil)
		w.i64(0)
		w.i64(0)
		return
	}
	w.i64(int64(t.MaxDepth))
	w.i64(int64(t.MinSamplesLeaf))
	w.i64(int64(t.MaxFeatures))
	w.i64(t.Seed)
	w.ints(t.classes)
	w.i64(int64(t.nfeat))
	w.i64(int64(len(t.nodes)))
	for i := range t.nodes {
		nd := &t.nodes[i]
		w.i32(nd.feature)
		w.i32(nd.left)
		w.i32(nd.right)
		w.f64(nd.threshold)
		if nd.left < 0 {
			w.floats(nd.probs)
		}
	}
}

// Unmarshal deserializes a model blob produced by Marshal.
func Unmarshal(data []byte) (Classifier, error) {
	r := &reader{buf: data}
	var magic [4]byte
	r.bytes(magic[:])
	if magic != modelMagic {
		return nil, fmt.Errorf("ml: bad model magic %q", magic[:])
	}
	if v := r.u16(); v != serializeVersion {
		return nil, fmt.Errorf("ml: unsupported model version %d", v)
	}
	kind := r.u8()
	var out Classifier
	switch kind {
	case kindDecisionTree:
		t := &DecisionTree{}
		unmarshalTree(r, t)
		out = t
	case kindRandomForest:
		f := &RandomForest{}
		f.NEstimators = int(r.i64())
		f.MaxDepth = int(r.i64())
		f.MinSamplesLeaf = int(r.i64())
		f.MaxFeatures = int(r.i64())
		f.Seed = r.i64()
		f.classes = r.ints()
		f.nfeat = int(r.i64())
		ntrees := int(r.i64())
		if ntrees < 0 || ntrees > 1<<20 {
			return nil, fmt.Errorf("ml: corrupt forest: %d trees", ntrees)
		}
		f.trees = make([]*DecisionTree, ntrees)
		for i := range f.trees {
			t := &DecisionTree{}
			unmarshalTree(r, t)
			f.trees[i] = t
		}
		out = f
	case kindLogReg:
		m := &LogisticRegression{}
		m.LearningRate = r.f64()
		m.Iterations = int(r.i64())
		m.L2 = r.f64()
		m.classes = r.ints()
		m.nfeat = int(r.i64())
		k := int(r.i64())
		if k < 0 || k > 1<<20 {
			return nil, fmt.Errorf("ml: corrupt model: %d weight vectors", k)
		}
		m.weights = make([][]float64, k)
		for i := range m.weights {
			m.weights[i] = r.floats()
		}
		out = m
	case kindGaussianNB:
		m := &GaussianNB{}
		m.VarSmoothing = r.f64()
		m.classes = r.ints()
		m.nfeat = int(r.i64())
		m.priors = r.floats()
		k := int(r.i64())
		if k < 0 || k > 1<<20 {
			return nil, fmt.Errorf("ml: corrupt model: %d classes", k)
		}
		m.means = make([][]float64, k)
		m.vars = make([][]float64, k)
		for i := 0; i < k; i++ {
			m.means[i] = r.floats()
			m.vars[i] = r.floats()
		}
		out = m
	case kindKNN:
		m := &KNN{}
		m.K = int(r.i64())
		m.classes = r.ints()
		m.nfeat = int(r.i64())
		k := int(r.i64())
		if k < 0 || k > 1<<20 {
			return nil, fmt.Errorf("ml: corrupt model: %d feature columns", k)
		}
		m.trainX = make([][]float64, k)
		for i := range m.trainX {
			m.trainX[i] = r.floats()
		}
		m.trainY = r.ints()
		out = m
	default:
		return nil, fmt.Errorf("ml: unknown model kind %d", kind)
	}
	if r.err != nil {
		return nil, fmt.Errorf("ml: corrupt model blob: %w", r.err)
	}
	return out, nil
}

func unmarshalTree(r *reader, t *DecisionTree) {
	t.MaxDepth = int(r.i64())
	t.MinSamplesLeaf = int(r.i64())
	t.MaxFeatures = int(r.i64())
	t.Seed = r.i64()
	t.classes = r.ints()
	t.nfeat = int(r.i64())
	n := int(r.i64())
	if n < 0 || n > 1<<28 || r.err != nil {
		r.fail(fmt.Errorf("corrupt tree: %d nodes", n))
		return
	}
	t.nodes = make([]treeNode, n)
	for i := 0; i < n; i++ {
		nd := &t.nodes[i]
		nd.feature = r.i32()
		nd.left = r.i32()
		nd.right = r.i32()
		nd.threshold = r.f64()
		if nd.left < 0 {
			nd.probs = r.floats()
		}
	}
}

// ------------------------------------------------------------ writer

type writer struct {
	buf []byte
}

func (w *writer) bytes(b []byte) { w.buf = append(w.buf, b...) }
func (w *writer) u8(v uint8)     { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16)   { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) i32(v int32)    { w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(v)) }
func (w *writer) i64(v int64)    { w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v)) }
func (w *writer) f64(v float64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v)) }

func (w *writer) floats(v []float64) {
	w.i64(int64(len(v)))
	for _, x := range v {
		w.f64(x)
	}
}

func (w *writer) ints(v []int) {
	w.i64(int64(len(v)))
	for _, x := range v {
		w.i64(int64(x))
	}
}

// ------------------------------------------------------------ reader

type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil || r.pos+n > len(r.buf) {
		r.fail(fmt.Errorf("unexpected end of blob at offset %d", r.pos))
		return make([]byte, n)
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) bytes(dst []byte) { copy(dst, r.take(len(dst))) }
func (r *reader) u8() uint8        { return r.take(1)[0] }
func (r *reader) u16() uint16      { return binary.LittleEndian.Uint16(r.take(2)) }
func (r *reader) i32() int32       { return int32(binary.LittleEndian.Uint32(r.take(4))) }
func (r *reader) i64() int64       { return int64(binary.LittleEndian.Uint64(r.take(8))) }
func (r *reader) f64() float64     { return math.Float64frombits(binary.LittleEndian.Uint64(r.take(8))) }

func (r *reader) floats() []float64 {
	n := int(r.i64())
	if n < 0 || n > 1<<28 || r.err != nil {
		r.fail(fmt.Errorf("corrupt float slice length %d", n))
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *reader) ints() []int {
	n := int(r.i64())
	if n < 0 || n > 1<<28 || r.err != nil {
		r.fail(fmt.Errorf("corrupt int slice length %d", n))
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.i64())
	}
	return out
}
