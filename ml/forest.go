package ml

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// RandomForest is a bagged ensemble of CART trees with per-split
// feature subsampling — the model the paper trains in Listing 1
// (sklearn.ensemble.RandomForestClassifier analog). Trees are fitted
// in parallel across a worker pool.
type RandomForest struct {
	// NEstimators is the number of trees (default 16).
	NEstimators int
	// MaxDepth bounds each tree's depth (default 12; 0 = unbounded).
	MaxDepth int
	// MinSamplesLeaf is the minimum rows per leaf (default 1).
	MinSamplesLeaf int
	// MaxFeatures is the per-split feature budget; 0 = sqrt(p).
	MaxFeatures int
	// Seed makes training deterministic.
	Seed int64
	// Workers bounds fitting parallelism; 0 = NumCPU.
	Workers int

	trees   []*DecisionTree
	classes []int
	nfeat   int
}

// NewRandomForest returns a forest with n trees and common defaults.
func NewRandomForest(n int) *RandomForest {
	return &RandomForest{NEstimators: n, MaxDepth: 12, MinSamplesLeaf: 1}
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "random_forest" }

// Classes implements Classifier.
func (f *RandomForest) Classes() []int { return f.classes }

// NumTrees returns the number of fitted trees.
func (f *RandomForest) NumTrees() int { return len(f.trees) }

// Fit implements Classifier. Each tree is trained on a bootstrap
// sample of the rows with sqrt(p) feature subsampling per split.
func (f *RandomForest) Fit(X [][]float64, y []int) error {
	n, err := validateXY(X, y)
	if err != nil {
		return err
	}
	if f.NEstimators <= 0 {
		f.NEstimators = 16
	}
	classes, cidx := classIndex(y)
	f.classes = classes
	f.nfeat = len(X)
	mtry := f.MaxFeatures
	if mtry <= 0 {
		mtry = int(math.Sqrt(float64(len(X))))
		if mtry < 1 {
			mtry = 1
		}
	}
	_ = cidx

	f.trees = make([]*DecisionTree, f.NEstimators)
	workers := f.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > f.NEstimators {
		workers = f.NEstimators
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range jobs {
				t := &DecisionTree{
					MaxDepth:       f.MaxDepth,
					MinSamplesLeaf: f.MinSamplesLeaf,
					MaxFeatures:    mtry,
					Seed:           f.Seed + int64(ti)*7919,
				}
				bx, by := bootstrap(X, y, n, newRNG(f.Seed+int64(ti)*104729+1))
				if err := t.Fit(bx, by); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("ml: tree %d: %w", ti, err)
					}
					mu.Unlock()
					continue
				}
				f.trees[ti] = t
			}
		}()
	}
	for ti := 0; ti < f.NEstimators; ti++ {
		jobs <- ti
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		f.trees = nil
		return firstErr
	}
	return nil
}

// bootstrap draws n rows with replacement, materializing the sampled
// columns (column-major).
func bootstrap(X [][]float64, y []int, n int, r *rng) ([][]float64, []int) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = r.Intn(n)
	}
	bx := make([][]float64, len(X))
	for fi, col := range X {
		sampled := make([]float64, n)
		for i, s := range idx {
			sampled[i] = col[s]
		}
		bx[fi] = sampled
	}
	by := make([]int, n)
	for i, s := range idx {
		by[i] = y[s]
	}
	return bx, by
}

// PredictProba implements Classifier: the average of the trees' leaf
// distributions.
func (f *RandomForest) PredictProba(X [][]float64) ([][]float64, error) {
	if len(f.trees) == 0 {
		return nil, ErrNotFitted
	}
	n, err := validateX(X)
	if err != nil {
		return nil, err
	}
	if len(X) != f.nfeat {
		return nil, fmt.Errorf("ml: forest fitted on %d features, got %d", f.nfeat, len(X))
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, len(f.classes))
	}
	buf := make([]float64, 0, f.nfeat)
	for r := 0; r < n; r++ {
		buf = row(X, r, buf)
		acc := out[r]
		for _, t := range f.trees {
			p := t.predictRowProbs(buf)
			for c := range acc {
				acc[c] += p[c]
			}
		}
		inv := 1 / float64(len(f.trees))
		for c := range acc {
			acc[c] *= inv
		}
	}
	return out, nil
}

// Predict implements Classifier.
func (f *RandomForest) Predict(X [][]float64) ([]int, error) {
	probs, err := f.PredictProba(X)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(probs))
	for i, p := range probs {
		out[i] = f.classes[argmax(p)]
	}
	return out, nil
}
