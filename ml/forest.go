package ml

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// RandomForest is a bagged ensemble of CART trees with per-split
// feature subsampling — the model the paper trains in Listing 1
// (sklearn.ensemble.RandomForestClassifier analog). Trees are fitted
// in parallel across a worker pool.
type RandomForest struct {
	// NEstimators is the number of trees (default 16).
	NEstimators int
	// MaxDepth bounds each tree's depth (default 12; 0 = unbounded).
	MaxDepth int
	// MinSamplesLeaf is the minimum rows per leaf (default 1).
	MinSamplesLeaf int
	// MaxFeatures is the per-split feature budget; 0 = sqrt(p).
	MaxFeatures int
	// Seed makes training deterministic.
	Seed int64
	// Workers bounds fitting parallelism; 0 = NumCPU.
	Workers int

	trees   []*DecisionTree
	classes []int
	nfeat   int
	// prep caches the traversal-optimized form used by the batch
	// prediction path; fitting resets it.
	prep atomic.Pointer[preparedForest]
}

// NewRandomForest returns a forest with n trees and common defaults.
func NewRandomForest(n int) *RandomForest {
	return &RandomForest{NEstimators: n, MaxDepth: 12, MinSamplesLeaf: 1}
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "random_forest" }

// Classes implements Classifier.
func (f *RandomForest) Classes() []int { return f.classes }

// NumTrees returns the number of fitted trees.
func (f *RandomForest) NumTrees() int { return len(f.trees) }

// Fit implements Classifier. Each tree is trained on a bootstrap
// sample of the rows with sqrt(p) feature subsampling per split.
func (f *RandomForest) Fit(X [][]float64, y []int) error {
	return f.FitWorkers(X, y, f.Workers)
}

// FitWorkers is Fit with an explicit worker count: the trees are
// partitioned into contiguous ranges, one FitPartial per worker, and
// the partials merge in tree order. Per-tree seeds derive from the
// absolute tree index, so the fitted forest is byte-identical at any
// worker count.
func (f *RandomForest) FitWorkers(X [][]float64, y []int, workers int) error {
	if f.NEstimators <= 0 {
		f.NEstimators = 16
	}
	est := f.NEstimators
	workers = resolveWorkers(workers, est)
	parts := make([]*ForestPartial, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * est / workers
			hi := (w + 1) * est / workers
			parts[w], errs[w] = f.FitPartial(X, y, lo, hi)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			f.trees = nil
			return err
		}
	}
	return f.MergePartials(parts)
}

// ForestPartial holds the fitted trees of one contiguous tree range —
// the per-worker partial state of parallel forest training. Because
// every tree's bootstrap and split seeds derive from its absolute
// index, a partial's bytes depend only on its range, never on which
// worker produced it or what else ran concurrently.
type ForestPartial struct {
	lo, hi  int
	trees   []*DecisionTree
	classes []int
	nfeat   int
}

// FitPartial fits trees [lo, hi) on X, y and returns them as a
// mergeable partial. It does not mutate the receiver beyond reading
// hyperparameters, so concurrent partial fits on one forest are safe.
func (f *RandomForest) FitPartial(X [][]float64, y []int, lo, hi int) (*ForestPartial, error) {
	n, err := validateXY(X, y)
	if err != nil {
		return nil, err
	}
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("ml: invalid tree range [%d, %d)", lo, hi)
	}
	classes, _ := classIndex(y)
	mtry := f.mtry(len(X))
	part := &ForestPartial{
		lo: lo, hi: hi,
		trees:   make([]*DecisionTree, 0, hi-lo),
		classes: classes,
		nfeat:   len(X),
	}
	for ti := lo; ti < hi; ti++ {
		t := &DecisionTree{
			MaxDepth:       f.MaxDepth,
			MinSamplesLeaf: f.MinSamplesLeaf,
			MaxFeatures:    mtry,
			Seed:           f.Seed + int64(ti)*7919,
		}
		bx, by := bootstrap(X, y, n, newRNG(f.Seed+int64(ti)*104729+1))
		if err := t.Fit(bx, by); err != nil {
			return nil, fmt.Errorf("ml: tree %d: %w", ti, err)
		}
		part.trees = append(part.trees, t)
	}
	return part, nil
}

// MergePartials assembles partial fits covering tree ranges
// [0, NEstimators) contiguously into the fitted forest.
func (f *RandomForest) MergePartials(parts []*ForestPartial) error {
	ordered := append([]*ForestPartial(nil), parts...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].lo < ordered[j].lo })
	trees := make([]*DecisionTree, 0, f.NEstimators)
	next := 0
	for _, p := range ordered {
		if p.lo != next {
			return fmt.Errorf("ml: forest partials not contiguous at tree %d", next)
		}
		if len(trees) > 0 && (p.nfeat != f.nfeat || !equalInts(p.classes, f.classes)) {
			return fmt.Errorf("ml: forest partials trained on different data shapes")
		}
		f.classes = p.classes
		f.nfeat = p.nfeat
		trees = append(trees, p.trees...)
		next = p.hi
	}
	if next != f.NEstimators {
		return fmt.Errorf("ml: forest partials cover %d of %d trees", next, f.NEstimators)
	}
	f.trees = trees
	f.prep.Store(nil)
	return nil
}

// mtry resolves the per-split feature budget (sqrt(p) by default).
func (f *RandomForest) mtry(nfeat int) int {
	mtry := f.MaxFeatures
	if mtry <= 0 {
		mtry = int(math.Sqrt(float64(nfeat)))
		if mtry < 1 {
			mtry = 1
		}
	}
	return mtry
}

// equalInts reports element-wise equality.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bootstrap draws n rows with replacement, materializing the sampled
// columns (column-major).
func bootstrap(X [][]float64, y []int, n int, r *rng) ([][]float64, []int) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = r.Intn(n)
	}
	bx := make([][]float64, len(X))
	for fi, col := range X {
		sampled := make([]float64, n)
		for i, s := range idx {
			sampled[i] = col[s]
		}
		bx[fi] = sampled
	}
	by := make([]int, n)
	for i, s := range idx {
		by[i] = y[s]
	}
	return bx, by
}

// PredictProba implements Classifier: the average of the trees' leaf
// distributions.
func (f *RandomForest) PredictProba(X [][]float64) ([][]float64, error) {
	if len(f.trees) == 0 {
		return nil, ErrNotFitted
	}
	n, err := validateX(X)
	if err != nil {
		return nil, err
	}
	if len(X) != f.nfeat {
		return nil, fmt.Errorf("ml: forest fitted on %d features, got %d", f.nfeat, len(X))
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, len(f.classes))
	}
	buf := make([]float64, 0, f.nfeat)
	for r := 0; r < n; r++ {
		buf = row(X, r, buf)
		acc := out[r]
		for _, t := range f.trees {
			p := t.predictRowProbs(buf)
			for c := range acc {
				acc[c] += p[c]
			}
		}
		inv := 1 / float64(len(f.trees))
		for c := range acc {
			acc[c] *= inv
		}
	}
	return out, nil
}

// Predict implements Classifier.
func (f *RandomForest) Predict(X [][]float64) ([]int, error) {
	probs, err := f.PredictProba(X)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(probs))
	for i, p := range probs {
		out[i] = f.classes[argmax(p)]
	}
	return out, nil
}
