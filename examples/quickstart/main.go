// Quickstart: create tables, train a model inside the database, store
// it as a BLOB, and classify new rows with SQL — the paper's Listings
// 1 and 2 in ten statements.
package main

import (
	"fmt"
	"log"

	"vexdb"
)

func main() {
	db := vexdb.Open()

	must(db.Exec(`CREATE TABLE measurements (
		id BIGINT, sepal_len DOUBLE, sepal_wid DOUBLE, species INTEGER)`))

	// A tiny two-species dataset (think iris): species 0 is small,
	// species 1 is large.
	must(db.Exec(`INSERT INTO measurements VALUES
		(1, 4.9, 3.0, 0), (2, 5.1, 3.5, 0), (3, 4.7, 3.2, 0), (4, 5.0, 3.4, 0),
		(5, 4.6, 3.1, 0), (6, 5.2, 3.6, 0), (7, 4.8, 3.0, 0), (8, 5.0, 3.3, 0),
		(9, 6.6, 2.9, 1), (10, 6.9, 3.1, 1), (11, 6.3, 2.8, 1), (12, 7.0, 3.2, 1),
		(13, 6.5, 3.0, 1), (14, 6.7, 3.1, 1), (15, 6.4, 2.9, 1), (16, 6.8, 3.0, 1)`))

	// Listing 1: train a random forest inside the database and store
	// the serialized model (with its metadata) in a table.
	must(db.Exec(`CREATE TABLE models AS
		SELECT * FROM train_rf((SELECT sepal_len, sepal_wid, species FROM measurements), 8, 6, 42)`))

	meta, err := db.Query("SELECT algo, n_features, trained_rows FROM models")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s on %d rows (%d features); model stored as a BLOB\n",
		meta.Column("algo").Get(0).Str(),
		meta.Column("trained_rows").Get(0).Int64(),
		meta.Column("n_features").Get(0).Int64())

	// Listing 2: classify new, unlabeled data with the stored model —
	// the data never leaves the database.
	must(db.Exec(`CREATE TABLE unknown (id BIGINT, sepal_len DOUBLE, sepal_wid DOUBLE)`))
	must(db.Exec(`INSERT INTO unknown VALUES (100, 4.8, 3.2), (101, 6.7, 3.0), (102, 5.0, 3.1)`))

	pred, err := db.Query(`
		SELECT u.id AS id,
		       predict(m.model, u.sepal_len, u.sepal_wid) AS species,
		       predict_confidence(m.model, u.sepal_len, u.sepal_wid) AS confidence
		FROM unknown u, models m ORDER BY u.id`)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < pred.NumRows(); i++ {
		fmt.Printf("row %d -> species %d (confidence %.2f)\n",
			pred.Column("id").Get(i).Int64(),
			pred.Column("species").Get(i).Int64(),
			pred.Column("confidence").Get(i).Float64())
	}
}

func must(res *vexdb.Result, err error) *vexdb.Result {
	if err != nil {
		log.Fatal(err)
	}
	return res
}
