// Voter classification: the paper's Section 4 use case end-to-end
// inside the database — generate synthetic North-Carolina-shaped
// voter and precinct data, join and label it with SQL + the
// weighted_label UDF, train a random forest in a table UDF, classify
// the held-out voters, and compare aggregated predictions against the
// known precinct totals.
package main

import (
	"fmt"
	"log"
	"math"

	"vexdb"
	"vexdb/internal/workload"
)

func main() {
	cfg := workload.TestConfig()
	cfg.Voters = 50_000
	cfg.Precincts = 500
	cfg.Estimators = 16

	precincts := workload.GeneratePrecincts(cfg)
	voters := workload.GenerateVoters(cfg, precincts)

	db := vexdb.Open()
	if err := db.CreateTableFrom("voters", workload.FrameToTable(voters)); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateTableFrom("precincts", workload.FrameToTable(precincts)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d voters (%d columns), %d precincts\n",
		db.NumRows("voters"), len(voters.Cols), db.NumRows("precincts"))

	// Preprocess: join each voter with their precinct's totals and
	// draw a weighted-random "true" label (60% democrat precinct =>
	// 60% chance of a democrat label).
	exec(db, `CREATE TABLE labeled AS
		SELECT v.voter_id AS id, v.precinct_id AS precinct_id,
		       v.f0, v.f1, v.f2, v.f3,
		       weighted_label(v.voter_id, CAST(p.dem_votes AS DOUBLE), CAST(p.rep_votes AS DOUBLE), 1) AS label
		FROM voters v JOIN precincts p ON v.precinct_id = p.precinct_id`)

	// Train on 75% of the voters, inside the database.
	exec(db, `CREATE TABLE rf_model AS
		SELECT * FROM train_rf((SELECT f0, f1, f2, f3, label FROM labeled WHERE id % 4 <> 0), 16, 10, 1)`)

	// Classify the held-out 25% and aggregate predictions by precinct.
	exec(db, `CREATE TABLE predictions AS
		SELECT l.precinct_id AS precinct_id, l.label AS label,
		       predict(m.model, l.f0, l.f1, l.f2, l.f3) AS pred
		FROM labeled l, rf_model m WHERE l.id % 4 = 0`)

	acc, err := db.Query(`
		SELECT sum(CASE WHEN pred = label THEN 1 ELSE 0 END) AS correct, count(*) AS total
		FROM predictions`)
	if err != nil {
		log.Fatal(err)
	}
	correct := acc.Column("correct").Get(0).Int64()
	total := acc.Column("total").Get(0).Int64()
	fmt.Printf("voter-level accuracy: %.3f (%d/%d test voters)\n",
		float64(correct)/float64(total), correct, total)

	// The paper's evaluation: compare predicted vs actual precinct
	// vote shares.
	shares, err := db.Query(`
		SELECT pr.precinct_id AS pid,
		       sum(CASE WHEN pr.pred = 0 THEN 1.0 ELSE 0.0 END) / count(*) AS predicted_share,
		       avg(CAST(p.dem_votes AS DOUBLE) / (p.dem_votes + p.rep_votes)) AS actual_share
		FROM predictions pr JOIN precincts p ON pr.precinct_id = p.precinct_id
		GROUP BY pr.precinct_id`)
	if err != nil {
		log.Fatal(err)
	}
	mae := 0.0
	for i := 0; i < shares.NumRows(); i++ {
		mae += math.Abs(shares.Column("predicted_share").Get(i).Float64() -
			shares.Column("actual_share").Get(i).Float64())
	}
	mae /= float64(shares.NumRows())
	fmt.Printf("precinct-share mean absolute error: %.3f over %d precincts\n", mae, shares.NumRows())
}

func exec(db *vexdb.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatal(err)
	}
}
