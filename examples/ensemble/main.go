// Ensemble learning with stored models (paper §3.3): train several
// model families, persist them with their test scores in database
// tables, pick the best with a relational query, and combine them by
// majority vote and by highest reported confidence.
package main

import (
	"fmt"
	"log"
	"math"

	"vexdb"
	"vexdb/ml"
	"vexdb/modelstore"
)

func main() {
	// A noisy two-moon-ish dataset: two offset arcs.
	X, y := moons(2000)
	trainX, trainY, testX, testY, err := ml.TrainTestSplit(X, y, 0.3, 7)
	if err != nil {
		log.Fatal(err)
	}

	db := vexdb.Open()
	store, err := modelstore.Open(db)
	if err != nil {
		log.Fatal(err)
	}

	candidates := []ml.Classifier{
		ml.NewRandomForest(16),
		ml.NewDecisionTree(),
		ml.NewLogisticRegression(),
		ml.NewGaussianNB(),
		ml.NewKNN(7),
	}
	var ids []int64
	for _, m := range candidates {
		if err := m.Fit(trainX, trainY); err != nil {
			log.Fatal(err)
		}
		pred, err := m.Predict(testX)
		if err != nil {
			log.Fatal(err)
		}
		acc, _ := ml.Accuracy(testY, pred)
		id, err := store.Save("moons_"+m.Name(), m, map[string]string{"dataset": "moons"})
		if err != nil {
			log.Fatal(err)
		}
		if err := store.RecordScore(id, "moons_test", "accuracy", acc); err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
		fmt.Printf("%-22s accuracy %.4f (stored as model %d)\n", m.Name(), acc, id)
	}

	// Meta-analysis with plain SQL over the model tables.
	best, err := store.Best("moons_test", "accuracy")
	if err != nil {
		log.Fatal(err)
	}
	_, meta, err := store.Load(best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest model by SQL meta-analysis: #%d (%s)\n", best, meta.Algo)

	ens, err := store.LoadEnsemble(ids...)
	if err != nil {
		log.Fatal(err)
	}
	maj, err := ens.PredictMajority(testX)
	if err != nil {
		log.Fatal(err)
	}
	majAcc, _ := ml.Accuracy(testY, maj)
	conf, winners, err := ens.PredictHighestConfidence(testX)
	if err != nil {
		log.Fatal(err)
	}
	confAcc, _ := ml.Accuracy(testY, conf)
	fmt.Printf("ensemble majority vote:       %.4f\n", majAcc)
	fmt.Printf("ensemble highest confidence:  %.4f\n", confAcc)

	wins := make(map[int]int)
	for _, w := range winners {
		wins[w]++
	}
	fmt.Println("\nwhich stored model was most confident, per test row:")
	for i, id := range ids {
		fmt.Printf("  model %d (%s): %d rows\n", id, candidates[i].Name(), wins[i])
	}
}

// moons generates two interleaved noisy arcs.
func moons(n int) ([][]float64, []int) {
	x0 := make([]float64, n)
	x1 := make([]float64, n)
	y := make([]int, n)
	state := uint64(42)
	rnd := func() float64 {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return float64((state*0x2545F4914F6CDD1D)>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		t := rnd() * 3.14159
		cls := i % 2
		if cls == 0 {
			x0[i] = math.Cos(t) + (rnd()-0.5)*0.3
			x1[i] = math.Sin(t) + (rnd()-0.5)*0.3
		} else {
			x0[i] = 1 - math.Cos(t) + (rnd()-0.5)*0.3
			x1[i] = 0.5 - math.Sin(t) + (rnd()-0.5)*0.3
		}
		y[i] = cls
	}
	return [][]float64{x0, x1}, y
}
