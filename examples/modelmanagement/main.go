// Model management: persist models and their metadata in database
// tables, query them with SQL, save the whole database to disk, and
// reopen it later with the models intact — the paper's answer to
// ModelDB, realized inside the column store.
package main

import (
	"fmt"
	"log"
	"os"

	"vexdb"
	"vexdb/ml"
	"vexdb/modelstore"
)

func main() {
	dir, err := os.MkdirTemp("", "vexdb-models-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Session 1: train models with different hyperparameters and
	// record their cross-validation scores.
	db := vexdb.Open()
	store, err := modelstore.Open(db)
	if err != nil {
		log.Fatal(err)
	}
	X, y := blobs(1200)
	for _, depth := range []int{2, 6, 12} {
		scores, err := ml.CrossValidate(func() ml.Classifier {
			t := ml.NewDecisionTree()
			t.MaxDepth = depth
			return t
		}, X, y, 5, 1)
		if err != nil {
			log.Fatal(err)
		}
		mean := 0.0
		for _, s := range scores {
			mean += s
		}
		mean /= float64(len(scores))

		tree := ml.NewDecisionTree()
		tree.MaxDepth = depth
		if err := tree.Fit(X, y); err != nil {
			log.Fatal(err)
		}
		id, err := store.Save("depth_sweep", tree,
			map[string]string{"max_depth": fmt.Sprint(depth)})
		if err != nil {
			log.Fatal(err)
		}
		if err := store.RecordScore(id, "blobs_cv", "accuracy", mean); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model %d: max_depth=%-2d 5-fold accuracy %.4f\n", id, depth, mean)
	}

	// Meta-analysis with plain SQL: hyperparameters vs quality.
	report, err := db.Query(`
		SELECT m.params AS params, s.value AS accuracy
		FROM ml_models m JOIN ml_scores s ON m.id = s.model_id
		ORDER BY s.value DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSQL meta-analysis (ORDER BY accuracy DESC):")
	for i := 0; i < report.NumRows(); i++ {
		fmt.Printf("  %-16s %.4f\n",
			report.Column("params").Get(i).Str(),
			report.Column("accuracy").Get(i).Float64())
	}

	if err := db.SaveDir(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndatabase (including model BLOBs) saved to %s\n", dir)

	// Session 2: reopen and use the best stored model directly.
	db2, err := vexdb.OpenDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	store2, err := modelstore.Open(db2)
	if err != nil {
		log.Fatal(err)
	}
	bestID, err := store2.Best("blobs_cv", "accuracy")
	if err != nil {
		log.Fatal(err)
	}
	clf, meta, err := store2.Load(bestID)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := clf.Predict(X)
	if err != nil {
		log.Fatal(err)
	}
	acc, _ := ml.Accuracy(y, pred)
	fmt.Printf("reloaded best model #%d (%s, %s): training-set accuracy %.4f\n",
		meta.ID, meta.Algo, meta.Params, acc)
}

// blobs generates two separable clusters.
func blobs(n int) ([][]float64, []int) {
	x0 := make([]float64, n)
	x1 := make([]float64, n)
	y := make([]int, n)
	state := uint64(99)
	rnd := func() float64 {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return float64((state*0x2545F4914F6CDD1D)>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		cls := i % 2
		off := float64(cls) * 1.2
		x0[i] = off + (rnd()-0.5)*3
		x1[i] = off + (rnd()-0.5)*3
		y[i] = cls
	}
	return [][]float64{x0, x1}, y
}
