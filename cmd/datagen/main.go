// Command datagen writes the synthetic voter-classification datasets
// in every format the benchmark consumes: CSV, per-column binary
// (npy-like), single-file binary container (hdf5-like), and a native
// vexdb database directory.
//
// Usage:
//
//	datagen -out ./data [-rows N] [-precincts N] [-cols N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"vexdb"
	"vexdb/internal/fileformat/csvio"
	"vexdb/internal/fileformat/h5io"
	"vexdb/internal/fileformat/npyio"
	"vexdb/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	out := flag.String("out", "data", "output directory")
	rows := flag.Int("rows", cfg.Voters, "voter row count")
	precincts := flag.Int("precincts", cfg.Precincts, "precinct count")
	cols := flag.Int("cols", cfg.Columns, "total voter columns")
	seed := flag.Int64("seed", cfg.Seed, "deterministic seed")
	flag.Parse()
	cfg.Voters = *rows
	cfg.Precincts = *precincts
	cfg.Columns = *cols
	cfg.Seed = *seed

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	t0 := time.Now()
	precinctsDF := workload.GeneratePrecincts(cfg)
	votersDF := workload.GenerateVoters(cfg, precinctsDF)
	fmt.Printf("generated %d voters x %d columns, %d precincts in %v\n",
		votersDF.NumRows(), len(votersDF.Cols), precinctsDF.NumRows(), time.Since(t0).Round(time.Millisecond))

	step := func(name string, fn func() error) {
		t := time.Now()
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("  wrote %-22s %v\n", name, time.Since(t).Round(time.Millisecond))
	}
	step("voters.csv", func() error { return csvio.WriteFile(filepath.Join(*out, "voters.csv"), votersDF) })
	step("precincts.csv", func() error {
		return csvio.WriteFile(filepath.Join(*out, "precincts.csv"), precinctsDF)
	})
	step("npy/ (per column)", func() error {
		if err := npyio.WriteDir(filepath.Join(*out, "npy"), "voters", votersDF); err != nil {
			return err
		}
		return npyio.WriteDir(filepath.Join(*out, "npy"), "precincts", precinctsDF)
	})
	step("voters.h5", func() error { return h5io.WriteFile(filepath.Join(*out, "voters.h5"), votersDF) })
	step("precincts.h5", func() error {
		return h5io.WriteFile(filepath.Join(*out, "precincts.h5"), precinctsDF)
	})
	step("db/ (vexdb native)", func() error {
		db := vexdb.Open()
		if err := db.CreateTableFrom("voters", workload.FrameToTable(votersDF)); err != nil {
			return err
		}
		if err := db.CreateTableFrom("precincts", workload.FrameToTable(precinctsDF)); err != nil {
			return err
		}
		return db.SaveDir(filepath.Join(*out, "db"))
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
