// Command datagen writes the synthetic voter-classification datasets
// in every format the benchmark consumes: CSV, per-column binary
// (npy-like), single-file binary container (hdf5-like), and a native
// vexdb database directory.
//
// Usage:
//
//	datagen -out ./data [-rows N] [-precincts N] [-cols N] [-seed N]
//	        [-events N] [-event-keys N] [-event-skew Z]
//
// With -events N > 0 it additionally writes a high-cardinality /
// skewed-keys `events` table (events.csv + the native db directory),
// sized so out-of-core paths are exercisable from the CLI:
//
//	datagen -out ./data -events 200000 -event-keys 150000
//	csdb -db ./data/db -mem-budget 4MB \
//	     -c "SELECT key, count(*) AS n, sum(val) AS s FROM events GROUP BY key"
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"vexdb"
	"vexdb/internal/fileformat/csvio"
	"vexdb/internal/fileformat/h5io"
	"vexdb/internal/fileformat/npyio"
	"vexdb/internal/frame"
	"vexdb/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	out := flag.String("out", "data", "output directory")
	rows := flag.Int("rows", cfg.Voters, "voter row count")
	precincts := flag.Int("precincts", cfg.Precincts, "precinct count")
	cols := flag.Int("cols", cfg.Columns, "total voter columns")
	seed := flag.Int64("seed", cfg.Seed, "deterministic seed")
	events := flag.Int("events", 0, "also generate an `events` table with this many rows (0 = skip): high-cardinality / skewed keys for exercising spill paths")
	eventKeys := flag.Int("event-keys", 0, "distinct event keys (default 3/4 of -events)")
	eventSkew := flag.Float64("event-skew", 0, "event key skew: 0 = uniform, larger = hotter head (power-law)")
	flag.Parse()
	cfg.Voters = *rows
	cfg.Precincts = *precincts
	cfg.Columns = *cols
	cfg.Seed = *seed

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	t0 := time.Now()
	precinctsDF := workload.GeneratePrecincts(cfg)
	votersDF := workload.GenerateVoters(cfg, precinctsDF)
	fmt.Printf("generated %d voters x %d columns, %d precincts in %v\n",
		votersDF.NumRows(), len(votersDF.Cols), precinctsDF.NumRows(), time.Since(t0).Round(time.Millisecond))
	var eventsDF *frame.DataFrame
	if *events > 0 {
		keys := *eventKeys
		if keys <= 0 {
			keys = *events * 3 / 4
		}
		eventsDF = workload.GenerateEvents(*events, keys, *eventSkew, cfg.Seed)
		fmt.Printf("generated %d events over %d keys (skew %.2f)\n", eventsDF.NumRows(), keys, *eventSkew)
	}

	step := func(name string, fn func() error) {
		t := time.Now()
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("  wrote %-22s %v\n", name, time.Since(t).Round(time.Millisecond))
	}
	step("voters.csv", func() error { return csvio.WriteFile(filepath.Join(*out, "voters.csv"), votersDF) })
	step("precincts.csv", func() error {
		return csvio.WriteFile(filepath.Join(*out, "precincts.csv"), precinctsDF)
	})
	step("npy/ (per column)", func() error {
		if err := npyio.WriteDir(filepath.Join(*out, "npy"), "voters", votersDF); err != nil {
			return err
		}
		return npyio.WriteDir(filepath.Join(*out, "npy"), "precincts", precinctsDF)
	})
	step("voters.h5", func() error { return h5io.WriteFile(filepath.Join(*out, "voters.h5"), votersDF) })
	step("precincts.h5", func() error {
		return h5io.WriteFile(filepath.Join(*out, "precincts.h5"), precinctsDF)
	})
	if eventsDF != nil {
		step("events.csv", func() error { return csvio.WriteFile(filepath.Join(*out, "events.csv"), eventsDF) })
	}
	step("db/ (vexdb native)", func() error {
		db := vexdb.Open()
		if err := db.CreateTableFrom("voters", workload.FrameToTable(votersDF)); err != nil {
			return err
		}
		if err := db.CreateTableFrom("precincts", workload.FrameToTable(precinctsDF)); err != nil {
			return err
		}
		if eventsDF != nil {
			if err := db.CreateTableFrom("events", workload.FrameToTable(eventsDF)); err != nil {
				return err
			}
		}
		return db.SaveDir(filepath.Join(*out, "db"))
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
