// Command csdb is an interactive SQL shell for a vexdb database
// (with the ML UDF suite loaded). It reads semicolon-terminated
// statements from stdin or executes -c / -f input, against an
// in-memory database or a directory opened with -db.
//
// Usage:
//
//	csdb                      # interactive shell, in-memory DB
//	csdb -db ./mydb           # open (and on exit save) a directory DB
//	csdb -c "SELECT 1 + 1"    # run one statement
//	csdb -f script.sql        # run a script
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vexdb"
	"vexdb/internal/cliutil"
)

func main() {
	dbDir := flag.String("db", "", "database directory to open (created/saved on exit)")
	command := flag.String("c", "", "execute a single statement and exit")
	file := flag.String("f", "", "execute a SQL script file and exit")
	quiet := flag.Bool("q", false, "suppress timing output")
	workers := flag.Int("workers", 0, "query execution parallelism (0 = all CPUs)")
	memBudget := flag.String("mem-budget", "0", "per-query memory budget for blocking operators, e.g. 64MB (0 = unlimited; over-budget queries spill to -temp-dir)")
	tempDir := flag.String("temp-dir", "", "spill directory for out-of-core execution (default: system temp dir)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline; expired queries stop with an error (0 = none)")
	flag.Parse()

	budget, err := cliutil.ParseByteSize(*memBudget)
	if err != nil {
		fatal(fmt.Errorf("-mem-budget: %w", err))
	}
	var db *vexdb.DB
	if *dbDir != "" {
		if _, err := os.Stat(*dbDir); err == nil {
			opened, err := vexdb.OpenDir(*dbDir)
			if err != nil {
				fatal(err)
			}
			db = opened
		}
	}
	if db == nil {
		db = vexdb.Open()
	}
	db.SetParallelism(*workers)
	db.SetMemoryBudget(budget)
	db.SetTempDir(*tempDir)
	db.SetQueryTimeout(*queryTimeout)

	exec := func(stmt string) bool {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			return true
		}
		start := time.Now()
		rows, err := db.QueryStream(stmt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return false
		}
		defer rows.Close()
		if rows.HasRows() {
			if err := printRows(rows); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return false
			}
		} else if rows.RowsAffected() > 0 {
			fmt.Printf("%d rows affected\n", rows.RowsAffected())
		}
		if !*quiet {
			fmt.Printf("(%v)\n", time.Since(start).Round(time.Microsecond))
		}
		return true
	}

	switch {
	case *command != "":
		if !exec(*command) {
			os.Exit(1)
		}
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		for _, stmt := range splitStatements(string(data)) {
			if !exec(stmt) {
				os.Exit(1)
			}
		}
	default:
		repl(db, exec)
	}

	if *dbDir != "" {
		if err := db.SaveDir(*dbDir); err != nil {
			fatal(err)
		}
	}
}

func repl(db *vexdb.DB, exec func(string) bool) {
	fmt.Println("vexdb shell — end statements with ';', '.tables' lists tables, '.quit' exits")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var pending strings.Builder
	fmt.Print("vexdb> ")
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case ".quit", ".exit":
			return
		case ".tables":
			for _, n := range db.TableNames() {
				fmt.Printf("%s (%d rows)\n", n, db.NumRows(n))
			}
			fmt.Print("vexdb> ")
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			exec(strings.TrimSuffix(strings.TrimSpace(pending.String()), ";"))
			pending.Reset()
		}
		fmt.Print("vexdb> ")
	}
}

// splitStatements splits a script on top-level semicolons (quotes
// respected).
func splitStatements(script string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(script); i++ {
		c := script[i]
		switch {
		case c == '\'':
			inStr = !inStr
			cur.WriteByte(c)
		case c == ';' && !inStr:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if strings.TrimSpace(cur.String()) != "" {
		out = append(out, cur.String())
	}
	return out
}

const maxPrintRows = 50

// printRows consumes the stream incrementally: the first maxPrintRows
// rows are buffered for column-aligned display, the rest are only
// counted — total shell memory stays O(maxPrintRows + one chunk)
// however large the result is.
func printRows(rows *vexdb.Rows) error {
	names := rows.Columns()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	var cells [][]string
	n := 0
	for rows.Next() {
		if n < maxPrintRows {
			row := make([]string, len(names))
			for c := range names {
				s := rows.Value(c).String()
				row[c] = s
				if len(s) > widths[c] {
					widths[c] = len(s)
				}
			}
			cells = append(cells, row)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	for i, name := range names {
		fmt.Printf("%-*s ", widths[i], name)
	}
	fmt.Println()
	for i := range names {
		fmt.Print(strings.Repeat("-", widths[i]), " ")
	}
	fmt.Println()
	for _, row := range cells {
		for c := range names {
			fmt.Printf("%-*s ", widths[c], row[c])
		}
		fmt.Println()
	}
	if n > len(cells) {
		fmt.Printf("... (%d more rows)\n", n-len(cells))
	}
	fmt.Printf("%d row(s)\n", n)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csdb:", err)
	os.Exit(1)
}
