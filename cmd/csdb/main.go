// Command csdb is an interactive SQL shell for a vexdb database
// (with the ML UDF suite loaded). It reads semicolon-terminated
// statements from stdin or executes -c / -f input, against an
// in-memory database or a directory opened with -db.
//
// Usage:
//
//	csdb                      # interactive shell, in-memory DB
//	csdb -db ./mydb           # open (and on exit save) a directory DB
//	csdb -c "SELECT 1 + 1"    # run one statement
//	csdb -f script.sql        # run a script
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vexdb"
)

func main() {
	dbDir := flag.String("db", "", "database directory to open (created/saved on exit)")
	command := flag.String("c", "", "execute a single statement and exit")
	file := flag.String("f", "", "execute a SQL script file and exit")
	quiet := flag.Bool("q", false, "suppress timing output")
	workers := flag.Int("workers", 0, "query execution parallelism (0 = all CPUs)")
	flag.Parse()

	var db *vexdb.DB
	if *dbDir != "" {
		if _, err := os.Stat(*dbDir); err == nil {
			opened, err := vexdb.OpenDir(*dbDir)
			if err != nil {
				fatal(err)
			}
			db = opened
		}
	}
	if db == nil {
		db = vexdb.Open()
	}
	db.SetParallelism(*workers)

	exec := func(stmt string) bool {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			return true
		}
		start := time.Now()
		res, err := db.Exec(stmt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return false
		}
		if res.Table != nil {
			printTable(res)
		} else if res.RowsAffected > 0 {
			fmt.Printf("%d rows affected\n", res.RowsAffected)
		}
		if !*quiet {
			fmt.Printf("(%v)\n", time.Since(start).Round(time.Microsecond))
		}
		return true
	}

	switch {
	case *command != "":
		if !exec(*command) {
			os.Exit(1)
		}
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		for _, stmt := range splitStatements(string(data)) {
			if !exec(stmt) {
				os.Exit(1)
			}
		}
	default:
		repl(db, exec)
	}

	if *dbDir != "" {
		if err := db.SaveDir(*dbDir); err != nil {
			fatal(err)
		}
	}
}

func repl(db *vexdb.DB, exec func(string) bool) {
	fmt.Println("vexdb shell — end statements with ';', '.tables' lists tables, '.quit' exits")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var pending strings.Builder
	fmt.Print("vexdb> ")
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case ".quit", ".exit":
			return
		case ".tables":
			for _, n := range db.TableNames() {
				fmt.Printf("%s (%d rows)\n", n, db.NumRows(n))
			}
			fmt.Print("vexdb> ")
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			exec(strings.TrimSuffix(strings.TrimSpace(pending.String()), ";"))
			pending.Reset()
		}
		fmt.Print("vexdb> ")
	}
}

// splitStatements splits a script on top-level semicolons (quotes
// respected).
func splitStatements(script string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(script); i++ {
		c := script[i]
		switch {
		case c == '\'':
			inStr = !inStr
			cur.WriteByte(c)
		case c == ';' && !inStr:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if strings.TrimSpace(cur.String()) != "" {
		out = append(out, cur.String())
	}
	return out
}

const maxPrintRows = 50

func printTable(res *vexdb.Result) {
	tab := res.Table
	widths := make([]int, len(tab.Names))
	for i, n := range tab.Names {
		widths[i] = len(n)
	}
	n := tab.NumRows()
	shown := n
	if shown > maxPrintRows {
		shown = maxPrintRows
	}
	cells := make([][]string, shown)
	for r := 0; r < shown; r++ {
		cells[r] = make([]string, len(tab.Cols))
		for c, col := range tab.Cols {
			s := col.Get(r).String()
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	for i, name := range tab.Names {
		fmt.Printf("%-*s ", widths[i], name)
	}
	fmt.Println()
	for i := range tab.Names {
		fmt.Print(strings.Repeat("-", widths[i]), " ")
	}
	fmt.Println()
	for r := 0; r < shown; r++ {
		for c := range tab.Cols {
			fmt.Printf("%-*s ", widths[c], cells[r][c])
		}
		fmt.Println()
	}
	if n > shown {
		fmt.Printf("... (%d more rows)\n", n-shown)
	}
	fmt.Printf("%d row(s)\n", n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csdb:", err)
	os.Exit(1)
}
