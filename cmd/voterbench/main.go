// Command voterbench regenerates the paper's evaluation: Figure 1
// (the voter-classification benchmark across seven data placements)
// and the ablation experiments E2-E5. Results print as aligned tables
// comparable with EXPERIMENTS.md.
//
// Usage:
//
//	voterbench [-rows N] [-precincts N] [-cols N] [-trees N] [-seed N]
//	           [-exp figure1|serialize|parallel|ensemble|protocols|ml|plan|all]
//	           [-dir PATH] [-json PATH]
//
// The ml experiment benchmarks the in-database TRAIN and CLASSIFY
// paths across worker counts; -json additionally writes the results
// as a machine-readable file (BENCH_ml.json) for CI tracking. The
// plan experiment measures the cost-based planner against the
// syntactic plan on a skewed multi-join (its -json report is
// BENCH_plan.json); it exits non-zero unless the cost-based plan is
// byte-identical, picks the expected join order, and wins by >= 2x.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"vexdb/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	rows := flag.Int("rows", cfg.Voters, "voter row count (paper: 7500000)")
	precincts := flag.Int("precincts", cfg.Precincts, "precinct count")
	cols := flag.Int("cols", cfg.Columns, "total voter columns (paper: 96)")
	trees := flag.Int("trees", cfg.Estimators, "random forest size")
	seed := flag.Int64("seed", cfg.Seed, "deterministic seed")
	exp := flag.String("exp", "figure1", "experiment: figure1|serialize|parallel|morsel|ensemble|protocols|ml|plan|all")
	dir := flag.String("dir", "", "work directory (default: temp)")
	jsonPath := flag.String("json", "", "write ml experiment results as JSON to this path")
	flag.Parse()

	cfg.Voters = *rows
	cfg.Precincts = *precincts
	cfg.Columns = *cols
	cfg.Estimators = *trees
	cfg.Seed = *seed

	workDir := *dir
	if workDir == "" {
		tmp, err := os.MkdirTemp("", "voterbench-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		workDir = tmp
	}

	fmt.Printf("preparing environment: %d voters x %d columns, %d precincts (dir %s)\n",
		cfg.Voters, cfg.Columns, cfg.Precincts, workDir)
	t0 := time.Now()
	env, err := workload.Setup(cfg, workDir)
	if err != nil {
		fatal(err)
	}
	defer env.Close()
	fmt.Printf("environment ready in %v\n\n", time.Since(t0).Round(time.Millisecond))

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}
	run("figure1", func() error { return runFigure1(env) })
	run("serialize", func() error { return runSerialize(env) })
	run("parallel", func() error { return runParallel(env) })
	run("morsel", func() error { return runMorsel(env) })
	run("ensemble", func() error { return runEnsemble(env) })
	run("protocols", func() error { return runProtocols(env) })
	run("ml", func() error { return runML(env, *jsonPath) })
	run("plan", func() error {
		path := *jsonPath
		if *exp == "all" {
			path = "" // -json names the ml report in all mode
		}
		return runPlan(path)
	})
}

func runFigure1(env *workload.Env) error {
	fmt.Println("Figure 1 — Voter Classification Benchmark")
	fmt.Println("(total pipeline time; 'wrangle' is the paper's gray load+preprocess bar)")
	fmt.Printf("%-30s %12s %12s %12s %12s %10s %8s\n",
		"method", "wrangle", "train", "predict", "TOTAL", "accuracy", "MAE")
	results, err := workload.Figure1(env)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-30s %12v %12v %12v %12v %10.3f %8.3f\n",
			r.Method,
			r.WrangleTotal().Round(time.Millisecond),
			r.Train.Round(time.Millisecond),
			r.Predict.Round(time.Millisecond),
			r.Total.Round(time.Millisecond),
			r.VoterAccuracy, r.PrecinctMAE)
	}
	fmt.Println()
	return nil
}

func runSerialize(env *workload.Env) error {
	fmt.Println("E2 — model (de)serialization overhead vs model size (paper §5.1)")
	fmt.Printf("%8s %12s %14s %14s %14s\n", "trees", "blob bytes", "serialize", "deserialize", "predict-20k")
	rows, err := workload.E2ModelSerialization(env, []int{1, 2, 4, 8, 16, 32, 64, 128})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%8d %12d %14v %14v %14v\n",
			r.Trees, r.BlobBytes,
			r.Serialize.Round(time.Microsecond),
			r.Deserialize.Round(time.Microsecond),
			r.PredictOnce.Round(time.Microsecond))
	}
	fmt.Println()
	return nil
}

func runParallel(env *workload.Env) error {
	fmt.Println("E3 — parallel prediction UDF scaling")
	fmt.Printf("%8s %14s %10s\n", "workers", "elapsed", "speedup")
	var workers []int
	for w := 1; w <= runtime.NumCPU(); w *= 2 {
		workers = append(workers, w)
	}
	rows, err := workload.E3ParallelUDF(env, workers)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%8d %14v %9.2fx\n", r.Workers, r.Elapsed.Round(time.Millisecond), r.Speedup)
	}
	fmt.Println()
	return nil
}

func runMorsel(env *workload.Env) error {
	fmt.Println("E6 — morsel-driven relational executor scaling (join + group-by, no UDFs)")
	fmt.Printf("%8s %14s %10s\n", "workers", "elapsed", "speedup")
	var workers []int
	for w := 1; w <= runtime.NumCPU(); w *= 2 {
		workers = append(workers, w)
	}
	rows, err := workload.E6MorselScaling(env, workers)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%8d %14v %9.2fx\n", r.Workers, r.Elapsed.Round(time.Millisecond), r.Speedup)
	}
	fmt.Println()
	return nil
}

func runEnsemble(env *workload.Env) error {
	fmt.Println("E4 — stored-model meta-analysis and ensembles (paper §3.3)")
	res, err := workload.E4Ensemble(env)
	if err != nil {
		return err
	}
	for algo, acc := range res.PerModel {
		fmt.Printf("%-28s accuracy %.4f\n", algo, acc)
	}
	fmt.Printf("%-28s accuracy %.4f\n", "best-by-SQL-meta-analysis", res.BestByMeta)
	fmt.Printf("%-28s accuracy %.4f\n", "ensemble-majority", res.Majority)
	fmt.Printf("%-28s accuracy %.4f\n", "ensemble-confidence", res.Confidence)
	fmt.Println()
	return nil
}

func runProtocols(env *workload.Env) error {
	fmt.Println("E5 — client protocol comparison (full voters table transfer)")
	fmt.Printf("%-28s %10s %14s\n", "protocol", "rows", "elapsed")
	rows, err := workload.E5Protocols(env)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-28s %10d %14v\n", r.Protocol, r.Rows, r.Elapsed.Round(time.Millisecond))
	}
	fmt.Println()
	return nil
}

// mlBenchJSON is the BENCH_ml.json schema: the pipeline shape plus
// one entry per worker count with train/classify ns-per-row and the
// model digest, and the cross-worker determinism verdict.
type mlBenchJSON struct {
	Benchmark       string  `json:"benchmark"`
	Voters          int     `json:"voters"`
	Features        int     `json:"features"`
	Trees           int     `json:"trees"`
	MaxDepth        int     `json:"max_depth"`
	Seed            int64   `json:"seed"`
	TrainRows       int     `json:"train_rows"`
	ClassifyRows    int     `json:"classify_rows"`
	ModelsIdentical bool    `json:"models_identical"`
	Runs            []mlRun `json:"runs"`
}

type mlRun struct {
	Workers          int     `json:"workers"`
	TrainNs          int64   `json:"train_ns"`
	TrainNsPerRow    float64 `json:"train_ns_per_row"`
	TrainSpeedup     float64 `json:"train_speedup"`
	ClassifyNs       int64   `json:"classify_ns"`
	ClassifyNsPerRow float64 `json:"classify_ns_per_row"`
	ClassifySpeedup  float64 `json:"classify_speedup"`
	ModelSHA256      string  `json:"model_sha256"`
}

func runML(env *workload.Env, jsonPath string) error {
	fmt.Println("E7 — in-database ML: morsel-parallel TRAIN and streamed vectorized CLASSIFY")
	workers := []int{1}
	for w := 2; w <= 8 || w <= runtime.NumCPU(); w *= 2 {
		workers = append(workers, w)
	}
	res, err := workload.E7MLBench(env, workers)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %12s %14s %10s %12s %14s %10s\n",
		"workers", "train", "train ns/row", "speedup", "classify", "clf ns/row", "speedup")
	for _, r := range res.Rows {
		fmt.Printf("%8d %12v %14.1f %9.2fx %12v %14.1f %9.2fx\n",
			r.Workers,
			r.Train.Round(time.Millisecond), r.TrainNsPerRow, r.TrainSpeedup,
			r.Classify.Round(time.Millisecond), r.ClassifyNsPerRow, r.ClassifySpeedup)
	}
	fmt.Printf("models byte-identical across worker counts: %v\n\n", res.ModelsIdentical)
	if !res.ModelsIdentical {
		return fmt.Errorf("ml: trained models differ across worker counts")
	}
	if jsonPath == "" {
		return nil
	}
	cfg := env.Cfg
	out := mlBenchJSON{
		Benchmark:       "voter-classification",
		Voters:          cfg.Voters,
		Features:        cfg.Features,
		Trees:           cfg.Estimators,
		MaxDepth:        cfg.MaxDepth,
		Seed:            cfg.Seed,
		TrainRows:       res.TrainRows,
		ClassifyRows:    res.ClassifyRows,
		ModelsIdentical: res.ModelsIdentical,
	}
	for _, r := range res.Rows {
		out.Runs = append(out.Runs, mlRun{
			Workers:          r.Workers,
			TrainNs:          r.Train.Nanoseconds(),
			TrainNsPerRow:    r.TrainNsPerRow,
			TrainSpeedup:     r.TrainSpeedup,
			ClassifyNs:       r.Classify.Nanoseconds(),
			ClassifyNsPerRow: r.ClassifyNsPerRow,
			ClassifySpeedup:  r.ClassifySpeedup,
			ModelSHA256:      r.ModelDigest,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", jsonPath)
	return nil
}

// planBenchJSON is the BENCH_plan.json schema: workload shape, the
// benchmarked query, per-planner wall clock and intermediate rows,
// and the verdicts the run is gated on.
type planBenchJSON struct {
	Benchmark     string    `json:"benchmark"`
	Events        int       `json:"events"`
	HotKeys       int       `json:"hot_keys"`
	DimRows       int       `json:"dim_rows"`
	Workers       int       `json:"workers"`
	Query         string    `json:"query"`
	Runs          []planRun `json:"runs"`
	Speedup       float64   `json:"speedup"`
	Identical     bool      `json:"identical_results"`
	ExpectedOrder bool      `json:"expected_join_order"`
}

type planRun struct {
	Planner          string `json:"planner"`
	Ns               int64  `json:"ns"`
	IntermediateRows int64  `json:"intermediate_rows"`
}

func runPlan(jsonPath string) error {
	fmt.Println("E8 — cost-based planning: skewed 3-table join, syntactic vs cost-based")
	res, err := workload.E8PlanBench(runtime.NumCPU())
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %14s %18s\n", "planner", "elapsed", "intermediate rows")
	for _, r := range []workload.PlanRun{res.Syntactic, res.CostBased} {
		fmt.Printf("%-12s %14v %18d\n", r.Planner, r.Elapsed.Round(time.Millisecond), r.IntermediateRows)
	}
	fmt.Printf("speedup %.2fx, identical results %v, expected join order %v\n\n",
		res.Speedup, res.Identical, res.ExpectedOrder)
	if res.Speedup < 2 {
		return fmt.Errorf("plan: cost-based speedup %.2fx below the 2x acceptance floor", res.Speedup)
	}
	if jsonPath == "" {
		return nil
	}
	out := planBenchJSON{
		Benchmark:     "cost-based-planning",
		Events:        res.Events,
		HotKeys:       res.HotKeys,
		DimRows:       res.DimRows,
		Workers:       res.Workers,
		Query:         res.Query,
		Speedup:       res.Speedup,
		Identical:     res.Identical,
		ExpectedOrder: res.ExpectedOrder,
		Runs: []planRun{
			{Planner: res.Syntactic.Planner, Ns: res.Syntactic.Elapsed.Nanoseconds(), IntermediateRows: res.Syntactic.IntermediateRows},
			{Planner: res.CostBased.Planner, Ns: res.CostBased.Elapsed.Nanoseconds(), IntermediateRows: res.CostBased.IntermediateRows},
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", jsonPath)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voterbench:", err)
	os.Exit(1)
}
