// Command loadgen drives concurrent wire clients against a csdb
// server with mixed scan / aggregation / join / DISTINCT / PREDICT
// traffic plus injected faults (mid-stream disconnects, slow readers,
// client cancels, oversized requests), and verifies the server's
// resource governance end to end:
//
//   - every admitted query returns results identical to a serial
//     baseline run (all query classes produce exact integer/string
//     results, so parallelism cannot change bytes);
//   - overload is rejected with the typed retryable error, never a
//     broken connection;
//   - after graceful shutdown no goroutines, spill files, or pool
//     leases remain.
//
// With -writers N the storm is mixed read/write: N extra connections
// stream single-row INSERTs into a dedicated ingest table while the
// read clients run. Writes land in their own table so the read
// baselines stay byte-identical, and after the storm the ingest row
// count must equal exactly the acknowledged statements.
//
// It emits a throughput / latency-percentile report as JSON
// (-out BENCH_concurrency.json) and exits non-zero on any violation.
//
// Usage:
//
//	loadgen -clients 16 -requests 25 -writers 4 -faults 0.1 -out BENCH_concurrency.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"vexdb"
	"vexdb/internal/cliutil"
	"vexdb/internal/governor"
	"vexdb/internal/vector"
	"vexdb/internal/wire"
	"vexdb/internal/workload"
)

type config struct {
	addr         string
	clients      int
	writers      int
	requests     int
	rows         int
	workers      int
	memBudget    int64
	memPool      int64
	maxActive    int
	maxQueue     int
	queryTimeout time.Duration
	drainTimeout time.Duration
	faults       float64
	seed         int64
	expectRej    bool
	exp          string
	out          string
}

type queryClass struct {
	Name string `json:"name"`
	SQL  string `json:"-"`
	// Runs/Errors are filled during the storm.
	Runs   int64 `json:"runs"`
	Errors int64 `json:"errors"`
	fp     uint64
}

type report struct {
	Config struct {
		Clients      int     `json:"clients"`
		Writers      int     `json:"writers"`
		Requests     int     `json:"requests_per_client"`
		Rows         int     `json:"rows"`
		MemPool      int64   `json:"mem_pool_bytes"`
		MaxActive    int     `json:"max_active"`
		MaxQueue     int     `json:"max_queue"`
		FaultRate    float64 `json:"fault_rate"`
		Seed         int64   `json:"seed"`
		QueryTimeout string  `json:"query_timeout"`
	} `json:"config"`
	Totals struct {
		Queries          int64 `json:"queries"`
		OK               int64 `json:"ok"`
		Rejected         int64 `json:"rejected"`
		InjectedFaults   int64 `json:"injected_faults"`
		UnexpectedErrors int64 `json:"unexpected_errors"`
		ResultMismatches int64 `json:"result_mismatches"`
	} `json:"totals"`
	// Writes summarizes the -writers ingest stream: acknowledged INSERT
	// statements, governor rejections (each retried until admitted), and
	// write statements/second over the storm window.
	Writes struct {
		Statements int64   `json:"statements"`
		Rejected   int64   `json:"rejected"`
		Errors     int64   `json:"errors"`
		QPS        float64 `json:"qps"`
	} `json:"writes"`
	ThroughputQPS float64            `json:"throughput_qps"`
	LatencyMS     map[string]float64 `json:"latency_ms"`
	Classes       []*queryClass      `json:"classes"`
	Governor      governor.Stats     `json:"governor"`
	Goroutines    int                `json:"goroutines_after_drain"`
	Violations    []string           `json:"violations"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func parseFlags() (config, error) {
	var c config
	memBudget := flag.String("mem-budget", "8MB", "per-query memory budget (spill threshold)")
	memPool := flag.String("mem-pool", "256MB", "shared memory pool for the governor")
	flag.StringVar(&c.addr, "addr", "", "existing server address (empty = start an in-process server)")
	flag.IntVar(&c.clients, "clients", 16, "concurrent wire clients")
	flag.IntVar(&c.writers, "writers", 0, "concurrent ingest writers (single-row INSERTs into a dedicated table)")
	flag.IntVar(&c.requests, "requests", 25, "requests per client")
	flag.IntVar(&c.rows, "rows", 100_000, "rows in the generated events table")
	flag.IntVar(&c.workers, "workers", 0, "per-query parallelism cap (0 = all CPUs)")
	flag.IntVar(&c.maxActive, "max-active", 4, "governor concurrent-query cap")
	flag.IntVar(&c.maxQueue, "max-queue", 8, "governor admission-queue capacity")
	flag.DurationVar(&c.queryTimeout, "query-timeout", 30*time.Second, "per-query deadline")
	flag.DurationVar(&c.drainTimeout, "drain-timeout", 30*time.Second, "graceful-shutdown window")
	flag.Float64Var(&c.faults, "faults", 0.1, "per-request fault-injection probability")
	flag.Int64Var(&c.seed, "seed", 1, "deterministic traffic seed")
	flag.BoolVar(&c.expectRej, "expect-rejects", false, "fail unless the governor rejected at least one query")
	flag.StringVar(&c.exp, "exp", "", "experiment to run: empty = concurrency storm, adaptive = hybrid-spill + adaptive-lease benchmark")
	flag.StringVar(&c.out, "out", "", "report output path (default BENCH_concurrency.json, or BENCH_adaptive.json with -exp adaptive)")
	flag.Parse()
	if c.out == "" {
		if c.exp == "adaptive" {
			c.out = "BENCH_adaptive.json"
		} else {
			c.out = "BENCH_concurrency.json"
		}
	}
	var err error
	if c.memBudget, err = cliutil.ParseByteSize(*memBudget); err != nil {
		return c, fmt.Errorf("-mem-budget: %w", err)
	}
	if c.memPool, err = cliutil.ParseByteSize(*memPool); err != nil {
		return c, fmt.Errorf("-mem-pool: %w", err)
	}
	return c, nil
}

func run() error {
	cfg, err := parseFlags()
	if err != nil {
		return err
	}
	switch cfg.exp {
	case "":
	case "adaptive":
		return runAdaptive(cfg)
	default:
		return fmt.Errorf("-exp: unknown experiment %q (want adaptive)", cfg.exp)
	}

	baseGoroutines := runtime.NumGoroutine()
	addr := cfg.addr
	var db *vexdb.DB
	var srv *wire.Server
	var tempDir string
	if addr == "" {
		tempDir, err = os.MkdirTemp("", "loadgen-spill-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tempDir)
		db, err = setupDB(cfg, tempDir)
		if err != nil {
			return err
		}
		srv = wire.NewServer(db.Engine())
		addr, err = srv.Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		fmt.Printf("loadgen: in-process server on %s\n", addr)
	}

	classes := queryClasses()
	if err := baseline(addr, classes); err != nil {
		return fmt.Errorf("serial baseline: %w", err)
	}

	var ingestBase int64
	if cfg.writers > 0 {
		if ingestBase, err = setupIngest(addr); err != nil {
			return fmt.Errorf("ingest setup: %w", err)
		}
	}

	rep := storm(cfg, addr, classes)

	if cfg.writers > 0 {
		verifyIngest(addr, rep, ingestBase)
	}

	if srv != nil {
		srv.Shutdown(cfg.drainTimeout)
		rep.Governor = db.Engine().Gov.Stats()
		checkPostShutdown(cfg, rep, db, tempDir, baseGoroutines)
	}
	if cfg.expectRej && rep.Totals.Rejected == 0 {
		rep.Violations = append(rep.Violations, "expected overload rejections, saw none")
	}
	if rep.Totals.UnexpectedErrors > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("%d unexpected query errors", rep.Totals.UnexpectedErrors))
	}
	if rep.Totals.ResultMismatches > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("%d results diverged from the serial baseline", rep.Totals.ResultMismatches))
	}
	if rep.Writes.Errors > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("%d write errors", rep.Writes.Errors))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: %d queries, %d ok, %d rejected, %d faults injected, %.1f qps (report: %s)\n",
		rep.Totals.Queries, rep.Totals.OK, rep.Totals.Rejected,
		rep.Totals.InjectedFaults, rep.ThroughputQPS, cfg.out)
	if cfg.writers > 0 {
		fmt.Printf("loadgen: %d writes acked by %d writers (%d rejected), %.1f write qps\n",
			rep.Writes.Statements, cfg.writers, rep.Writes.Rejected, rep.Writes.QPS)
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("violations: %s", strings.Join(rep.Violations, "; "))
	}
	return nil
}

// setupDB builds the governed database: a skewed events stream for
// scan/agg/DISTINCT traffic and the voter pipeline (labeled rows plus
// a trained random forest) for join/PREDICT traffic.
func setupDB(cfg config, tempDir string) (*vexdb.DB, error) {
	db := vexdb.OpenOptions(vexdb.Options{
		Parallelism:  cfg.workers,
		MemoryBudget: cfg.memBudget,
		TempDir:      tempDir,
		QueryTimeout: cfg.queryTimeout,
		Governor: &vexdb.GovernorConfig{
			PoolBytes: cfg.memPool,
			MaxActive: cfg.maxActive,
			MaxQueued: cfg.maxQueue,
		},
	})
	events := workload.GenerateEvents(cfg.rows, cfg.rows/8+1, 1.1, cfg.seed)
	if err := db.CreateTableFrom("events", workload.FrameToTable(events)); err != nil {
		return nil, err
	}
	wcfg := workload.TestConfig()
	wcfg.Seed = cfg.seed
	precincts := workload.GeneratePrecincts(wcfg)
	if err := db.CreateTableFrom("precincts", workload.FrameToTable(precincts)); err != nil {
		return nil, err
	}
	voters := workload.GenerateVoters(wcfg, precincts)
	if err := db.CreateTableFrom("voters", workload.FrameToTable(voters)); err != nil {
		return nil, err
	}
	wrangle := fmt.Sprintf(`CREATE TABLE labeled AS
		SELECT v.voter_id AS id, v.precinct_id AS precinct_id, v.f0, v.f1, v.f2, v.f3,
		       weighted_label(v.voter_id, CAST(p.dem_votes AS DOUBLE), CAST(p.rep_votes AS DOUBLE), %d) AS label
		FROM voters v JOIN precincts p ON v.precinct_id = p.precinct_id`, wcfg.Seed)
	if _, err := db.Exec(wrangle); err != nil {
		return nil, fmt.Errorf("wrangle: %w", err)
	}
	train := fmt.Sprintf(`CREATE TABLE rf_model AS
		SELECT * FROM train_rf((SELECT f0, f1, f2, f3, label FROM labeled WHERE id %% %d <> 0), %d, %d, %d)`,
		wcfg.TestModulus, wcfg.Estimators, wcfg.MaxDepth, wcfg.Seed)
	if _, err := db.Exec(train); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	return db, nil
}

// queryClasses returns the mixed traffic. Every class produces exact
// (integer/string) results in a deterministic order, so any admitted
// run — whatever its worker grant — must hash identically to the
// serial baseline.
func queryClasses() []*queryClass {
	return []*queryClass{
		{Name: "scan", SQL: "SELECT event_id, key, tag FROM events WHERE key % 7 = 0 AND event_id < 50000"},
		{Name: "agg", SQL: "SELECT tag, count(*) AS n, min(key) AS lo, max(key) AS hi FROM events GROUP BY tag ORDER BY tag"},
		{Name: "join", SQL: "SELECT l.precinct_id, count(*) AS n FROM labeled l JOIN precincts p ON l.precinct_id = p.precinct_id GROUP BY l.precinct_id ORDER BY l.precinct_id"},
		{Name: "distinct", SQL: "SELECT count(DISTINCT key) AS n FROM events"},
		{Name: "predict", SQL: "SELECT l.id, predict(m.model, l.f0, l.f1, l.f2, l.f3) AS pred FROM labeled l, rf_model m WHERE l.id % 16 = 0"},
	}
}

// baseline runs every class once on a single connection and records
// its result fingerprint.
func baseline(addr string, classes []*queryClass) error {
	c, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	for _, q := range classes {
		fp, _, err := runQuery(c, q.SQL, 0)
		if err != nil {
			return fmt.Errorf("%s: %w", q.Name, err)
		}
		q.fp = fp
	}
	return nil
}

// runQuery streams one query and folds every value of every row into
// an order-sensitive FNV-1a fingerprint. chunkDelay simulates a slow
// reader.
func runQuery(c *wire.Client, sql string, chunkDelay time.Duration) (uint64, int64, error) {
	st, err := c.Stream(wire.Columnar, sql)
	if err != nil {
		return 0, 0, err
	}
	h := fnv.New64a()
	var rows int64
	for {
		ch, err := st.Next()
		if err != nil {
			st.Close()
			return 0, rows, err
		}
		if ch == nil {
			break
		}
		hashChunk(h, ch)
		rows += int64(ch.NumRows())
		if chunkDelay > 0 {
			time.Sleep(chunkDelay)
		}
	}
	return h.Sum64(), rows, st.Close()
}

func hashChunk(h interface{ Write([]byte) (int, error) }, ch *vector.Chunk) {
	for r := 0; r < ch.NumRows(); r++ {
		for c := 0; c < ch.NumCols(); c++ {
			h.Write([]byte(ch.Col(c).Get(r).String()))
			h.Write([]byte{0x1f})
		}
		h.Write([]byte{0x1e})
	}
}

type collector struct {
	mu        sync.Mutex
	latencies []time.Duration
	rep       *report
}

func (col *collector) record(d time.Duration) {
	col.mu.Lock()
	col.latencies = append(col.latencies, d)
	col.rep.Totals.OK++
	col.mu.Unlock()
}

// storm runs the concurrent phase: cfg.clients connections each
// issuing cfg.requests requests, a cfg.faults fraction of which are
// fault injections instead of well-formed queries.
func storm(cfg config, addr string, classes []*queryClass) *report {
	rep := &report{LatencyMS: map[string]float64{}, Classes: classes}
	rep.Config.Clients = cfg.clients
	rep.Config.Writers = cfg.writers
	rep.Config.Requests = cfg.requests
	rep.Config.Rows = cfg.rows
	rep.Config.MemPool = cfg.memPool
	rep.Config.MaxActive = cfg.maxActive
	rep.Config.MaxQueue = cfg.maxQueue
	rep.Config.FaultRate = cfg.faults
	rep.Config.Seed = cfg.seed
	rep.Config.QueryTimeout = cfg.queryTimeout.String()
	col := &collector{rep: rep}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			clientLoop(cfg, addr, classes, col, id)
		}(i)
	}
	for i := 0; i < cfg.writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			writeLoop(cfg, addr, col, id)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep.ThroughputQPS = float64(rep.Totals.OK) / elapsed.Seconds()
	if cfg.writers > 0 {
		rep.Writes.QPS = float64(rep.Writes.Statements) / elapsed.Seconds()
	}
	sort.Slice(col.latencies, func(i, j int) bool { return col.latencies[i] < col.latencies[j] })
	pct := func(p float64) float64 {
		if len(col.latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(col.latencies)-1))
		return float64(col.latencies[i].Microseconds()) / 1000
	}
	rep.LatencyMS["p50"] = pct(0.50)
	rep.LatencyMS["p90"] = pct(0.90)
	rep.LatencyMS["p99"] = pct(0.99)
	rep.LatencyMS["max"] = pct(1.0)
	return rep
}

func clientLoop(cfg config, addr string, classes []*queryClass, col *collector, id int) {
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)*7919))
	c, err := wire.Dial(addr)
	if err != nil {
		col.mu.Lock()
		col.rep.Totals.UnexpectedErrors++
		col.mu.Unlock()
		return
	}
	defer c.Close()
	for i := 0; i < cfg.requests; i++ {
		if rng.Float64() < cfg.faults {
			col.mu.Lock()
			col.rep.Totals.InjectedFaults++
			col.mu.Unlock()
			if err := injectFault(cfg, addr, c, classes, rng); err != nil {
				col.mu.Lock()
				col.rep.Totals.UnexpectedErrors++
				col.mu.Unlock()
				fmt.Fprintf(os.Stderr, "loadgen: fault injection: %v\n", err)
				return
			}
			continue
		}
		q := classes[rng.Intn(len(classes))]
		col.mu.Lock()
		q.Runs++
		col.rep.Totals.Queries++
		col.mu.Unlock()
		t0 := time.Now()
		fp, _, err := runQuery(c, q.SQL, 0)
		if err != nil {
			var ov *governor.OverloadedError
			if errors.As(err, &ov) {
				col.mu.Lock()
				col.rep.Totals.Rejected++
				col.mu.Unlock()
				time.Sleep(ov.RetryAfter)
				continue
			}
			col.mu.Lock()
			q.Errors++
			col.rep.Totals.UnexpectedErrors++
			col.mu.Unlock()
			fmt.Fprintf(os.Stderr, "loadgen: %s: %v\n", q.Name, err)
			return
		}
		col.record(time.Since(t0))
		if fp != q.fp {
			col.mu.Lock()
			col.rep.Totals.ResultMismatches++
			col.mu.Unlock()
			fmt.Fprintf(os.Stderr, "loadgen: %s: fingerprint %x, baseline %x\n", q.Name, fp, q.fp)
		}
	}
}

// setupIngest creates the writers' dedicated table (kept separate from
// the read tables so baselines stay byte-identical) and records how
// many rows it already holds, so a run against a persistent server
// still verifies exactly this storm's acknowledged statements.
func setupIngest(addr string) (int64, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE IF NOT EXISTS ingest (writer BIGINT, seq BIGINT)"); err != nil {
		return 0, err
	}
	tab, err := c.Query(wire.Columnar, "SELECT count(*) AS n FROM ingest")
	if err != nil {
		return 0, err
	}
	return tab.Cols[0].Get(0).Int64(), nil
}

// verifyIngest asserts the write-path invariant at the SQL layer: the
// ingest table grew by exactly the acknowledged statements — every
// acked INSERT visible, none duplicated or lost.
func verifyIngest(addr string, rep *report, base int64) {
	c, err := wire.Dial(addr)
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("ingest verification: %v", err))
		return
	}
	defer c.Close()
	tab, err := c.Query(wire.Columnar, "SELECT count(*) AS n FROM ingest")
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("ingest verification: %v", err))
		return
	}
	if got, want := tab.Cols[0].Get(0).Int64(), base+rep.Writes.Statements; got != want {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("ingest holds %d rows, want %d (%d acked writes on top of %d)",
				got, want, rep.Writes.Statements, base))
	}
}

// writeLoop streams cfg.requests single-row INSERTs on one dedicated
// connection. Governor rejections are retried after the advertised
// backoff so every writer eventually commits its full quota; any other
// error ends the writer and is reported as a violation.
func writeLoop(cfg config, addr string, col *collector, id int) {
	fail := func(format string, args ...any) {
		col.mu.Lock()
		col.rep.Writes.Errors++
		col.mu.Unlock()
		fmt.Fprintf(os.Stderr, "loadgen: writer %d: %s\n", id, fmt.Sprintf(format, args...))
	}
	c, err := wire.Dial(addr)
	if err != nil {
		fail("%v", err)
		return
	}
	defer c.Close()
	for i := 0; i < cfg.requests; {
		res, err := c.Exec(fmt.Sprintf("INSERT INTO ingest VALUES (%d, %d)", id, i))
		if err != nil {
			var ov *governor.OverloadedError
			if errors.As(err, &ov) {
				col.mu.Lock()
				col.rep.Writes.Rejected++
				col.mu.Unlock()
				time.Sleep(ov.RetryAfter)
				continue
			}
			fail("%v", err)
			return
		}
		if res != 1 {
			fail("insert acked %d rows", res)
			return
		}
		col.mu.Lock()
		col.rep.Writes.Statements++
		col.mu.Unlock()
		i++
	}
}

// injectFault exercises one failure mode. Faults that poison a
// connection (disconnect) use a throwaway client so the caller's
// connection keeps serving.
func injectFault(cfg config, addr string, c *wire.Client, classes []*queryClass, rng *rand.Rand) error {
	switch rng.Intn(4) {
	case 0: // oversized request, rejected in-band, connection survives
		_, _, err := runQuery(c, strings.Repeat(" ", 17<<20)+"SELECT 1 AS n", 0)
		if err == nil {
			return errors.New("oversized request was accepted")
		}
		if !strings.Contains(err.Error(), "too large") {
			return fmt.Errorf("oversized request: %w", err)
		}
		// The probe proves the connection survived; a governor
		// rejection is an equally valid in-band answer.
		if _, _, err := runQuery(c, "SELECT 1 AS n", 0); err != nil && !isRejected(err) {
			return fmt.Errorf("connection dead after oversized request: %w", err)
		}
	case 1: // mid-stream disconnect on a throwaway connection
		tc, err := wire.Dial(addr)
		if err != nil {
			return nil // accept pressure under storm; not a failure
		}
		st, err := tc.Stream(wire.Columnar, classes[0].SQL)
		if err == nil {
			st.Next()
		}
		tc.Close()
	case 2: // slow reader holding its lease while it drips chunks
		_, _, err := runQuery(c, classes[0].SQL, 2*time.Millisecond)
		if err != nil && !isRejected(err) {
			return fmt.Errorf("slow read: %w", err)
		}
	case 3: // client-initiated cancel mid-stream
		st, err := c.Stream(wire.Columnar, classes[0].SQL)
		if err != nil {
			if isRejected(err) {
				return nil
			}
			return fmt.Errorf("cancel setup: %w", err)
		}
		if _, err := st.Next(); err != nil {
			st.Close()
			if isRejected(err) {
				return nil
			}
			return fmt.Errorf("cancel first chunk: %w", err)
		}
		if err := c.Cancel(); err != nil {
			return fmt.Errorf("cancel frame: %w", err)
		}
		for {
			ch, err := st.Next()
			if err != nil {
				// The query either finished before the cancel landed
				// or reports the cancellation; both are correct.
				if !errors.Is(err, wire.ErrQueryCancelled) {
					st.Close()
					return fmt.Errorf("cancel outcome: %w", err)
				}
				break
			}
			if ch == nil {
				break
			}
		}
		st.Close()
	}
	return nil
}

func isRejected(err error) bool {
	var ov *governor.OverloadedError
	return errors.As(err, &ov)
}

// checkPostShutdown asserts the governance invariants that only an
// in-process run can observe: pool accounting, spill-file cleanup,
// and goroutine teardown.
func checkPostShutdown(cfg config, rep *report, db *vexdb.DB, tempDir string, baseGoroutines int) {
	st := rep.Governor
	if st.LeasedBytes != 0 || st.Active != 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("governor not drained: %d queries, %d bytes still leased", st.Active, st.LeasedBytes))
	}
	if cfg.memPool > 0 && st.PeakLeasedBytes > cfg.memPool {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("peak leased %d exceeds pool %d", st.PeakLeasedBytes, cfg.memPool))
	}
	if ents, err := os.ReadDir(tempDir); err == nil && len(ents) > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("%d spill files left in %s", len(ents), tempDir))
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		rep.Goroutines = runtime.NumGoroutine()
		if rep.Goroutines <= baseGoroutines+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if rep.Goroutines > baseGoroutines+2 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("%d goroutines after drain (baseline %d)", rep.Goroutines, baseGoroutines))
	}
}
