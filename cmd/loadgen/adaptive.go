// The -exp adaptive experiment measures the two halves of adaptive
// memory governance in-process (no wire protocol in the way):
//
//  1. Hybrid spill-mode aggregation: a heavy GROUP BY at a constrained
//     budget, run with hybrid partition eviction on vs off
//     (route-everything). Spill bytes come from the EXPLAIN ANALYZE
//     memory header; results must stay byte-identical to an unlimited
//     in-memory run, and hybrid must cut spill writes at least 2x.
//
//  2. Adaptive leases: the same mixed workload (concurrent heavy
//     aggregations + light scans, far fewer clients than MaxActive)
//     against a governed pool under ReclaimPolicy "static" vs "fair".
//     Pool utilization is sampled throughout; the fair policy must
//     actually grow leases and reach strictly higher utilization.
//
// Both halves self-assert: violations make loadgen exit non-zero, so
// the CI smoke job is a regression gate, not just a report generator.
package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"vexdb"
	"vexdb/internal/exec"
	"vexdb/internal/workload"
)

const (
	// Heavy aggregation: ~rows/8 groups, each carrying a DISTINCT set,
	// so the hash-agg state is a small multiple of adaptiveBudget and
	// overflow is guaranteed. val is dyadic, so sums are exact and
	// results fingerprint identically at any worker count.
	heavyAggSQL  = "SELECT key, count(*) AS n, sum(val) AS sv, count(DISTINCT event_id) AS d FROM events GROUP BY key"
	lightScanSQL = "SELECT count(*) AS n, max(key) AS hi FROM events WHERE key % 7 = 0"

	// Per-query budget for the hybrid half, sized against the heavy
	// aggregation's state at the default -rows 100000: small enough
	// that both modes overflow, large enough that hybrid can keep a
	// meaningful share of partitions resident (where route-everything
	// pays for every post-overflow row regardless).
	adaptiveBudget = 6 << 20

	// Governed pool for the lease half. MaxActive 8 with only 2
	// clients means static fair-share leases pin utilization at 2/8 of
	// the pool; the fair policy can grow toward the whole pool.
	adaptivePool      = 16 << 20
	adaptiveMaxActive = 8
	adaptiveClients   = 2
)

type policyResult struct {
	Policy          string  `json:"policy"`
	Queries         int64   `json:"queries"`
	MeanUtilization float64 `json:"mean_utilization"`
	PeakUtilization float64 `json:"peak_utilization"`
	Grows           int64   `json:"grows"`
	GrownBytes      int64   `json:"grown_bytes"`
	Shrinks         int64   `json:"shrinks"`
	Reclaims        int64   `json:"reclaims"`
	HeavyP50MS      float64 `json:"heavy_p50_ms"`
	HeavyP99MS      float64 `json:"heavy_p99_ms"`
	HeavyMaxMS      float64 `json:"heavy_max_ms"`
}

type adaptiveReport struct {
	Config struct {
		Rows       int   `json:"rows"`
		Workers    int   `json:"workers"`
		Seed       int64 `json:"seed"`
		Budget     int64 `json:"hybrid_budget_bytes"`
		Pool       int64 `json:"lease_pool_bytes"`
		MaxActive  int   `json:"lease_max_active"`
		Clients    int   `json:"lease_clients"`
		Iterations int   `json:"lease_iterations"`
	} `json:"config"`
	Hybrid struct {
		SpillBytesHybrid   int64   `json:"spill_bytes_hybrid"`
		SpillBytesFull     int64   `json:"spill_bytes_route_everything"`
		ReductionX         float64 `json:"reduction_x"`
		ResidentPartitions int64   `json:"resident_partitions"`
		SpilledPartitions  int64   `json:"spilled_partitions"`
		FingerprintOK      bool    `json:"fingerprint_ok"`
	} `json:"hybrid"`
	Leases     []policyResult `json:"leases"`
	Violations []string       `json:"violations"`
}

// runAdaptive is the -exp adaptive entry point.
func runAdaptive(cfg config) error {
	rep := &adaptiveReport{}
	rep.Config.Rows = cfg.rows
	rep.Config.Workers = cfg.workers
	rep.Config.Seed = cfg.seed
	rep.Config.Budget = adaptiveBudget
	rep.Config.Pool = adaptivePool
	rep.Config.MaxActive = adaptiveMaxActive
	rep.Config.Clients = adaptiveClients
	rep.Config.Iterations = cfg.requests

	if err := hybridExperiment(cfg, rep); err != nil {
		return err
	}
	for _, policy := range []string{"static", "fair"} {
		res, err := leaseExperiment(cfg, rep, policy)
		if err != nil {
			return err
		}
		rep.Leases = append(rep.Leases, res)
	}
	gateLeases(rep)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: adaptive experiment: hybrid spill %d B vs %d B (%.1fx), utilization %.2f static -> %.2f fair (report: %s)\n",
		rep.Hybrid.SpillBytesHybrid, rep.Hybrid.SpillBytesFull, rep.Hybrid.ReductionX,
		rep.Leases[0].MeanUtilization, rep.Leases[1].MeanUtilization, cfg.out)
	if len(rep.Violations) > 0 {
		return fmt.Errorf("violations: %s", strings.Join(rep.Violations, "; "))
	}
	return nil
}

func adaptiveDB(cfg config, dir string, opts vexdb.Options) (*vexdb.DB, error) {
	opts.TempDir = dir
	opts.Parallelism = cfg.workers
	opts.QueryTimeout = cfg.queryTimeout
	db := vexdb.OpenOptions(opts)
	events := workload.GenerateEvents(cfg.rows, cfg.rows/8+1, 1.1, cfg.seed)
	if err := db.CreateTableFrom("events", workload.FrameToTable(events)); err != nil {
		return nil, err
	}
	return db, nil
}

// fingerprintQuery hashes every cell of the result in order, exactly
// like the storm's wire-level fingerprints.
func fingerprintQuery(db *vexdb.DB, sql string) (uint64, error) {
	tab, err := db.Query(sql)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	for r := 0; r < tab.NumRows(); r++ {
		for c := 0; c < tab.NumCols(); c++ {
			h.Write([]byte(tab.Cols[c].Get(r).String()))
			h.Write([]byte{0x1f})
		}
		h.Write([]byte{0x1e})
	}
	return h.Sum64(), nil
}

// spillFromExplain runs EXPLAIN ANALYZE on sql and parses the "spill:"
// memory-dynamics header added by the engine. All-zero when the query
// never spilled.
func spillFromExplain(db *vexdb.DB, sql string) (written, spilled, resident int64, err error) {
	tab, err := db.Query("EXPLAIN ANALYZE " + sql)
	if err != nil {
		return 0, 0, 0, err
	}
	for r := 0; r < tab.NumRows(); r++ {
		line := tab.Cols[0].Get(r).Str()
		if !strings.HasPrefix(strings.TrimSpace(line), "spill:") {
			continue
		}
		var runs, read int64
		_, err = fmt.Sscanf(strings.TrimSpace(line),
			"spill: partitions spilled=%d resident=%d runs=%d written=%d read=%d",
			&spilled, &resident, &runs, &written, &read)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("unparseable spill header %q: %w", line, err)
		}
		return written, spilled, resident, nil
	}
	return 0, 0, 0, nil
}

// hybridExperiment fills rep.Hybrid: spill bytes with hybrid eviction
// on vs off at the same constrained budget, fingerprint-checked
// against an unlimited in-memory run of the same query.
func hybridExperiment(cfg config, rep *adaptiveReport) error {
	dir, err := os.MkdirTemp("", "loadgen-adaptive-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db, err := adaptiveDB(cfg, dir, vexdb.Options{})
	if err != nil {
		return err
	}

	// Unlimited in-memory baseline fingerprint.
	baseFP, err := fingerprintQuery(db, heavyAggSQL)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}

	db.SetMemoryBudget(adaptiveBudget)
	defer func(prev bool) { exec.HybridAggEnabled = prev }(exec.HybridAggEnabled)

	exec.HybridAggEnabled = true
	hw, hs, hr, err := spillFromExplain(db, heavyAggSQL)
	if err != nil {
		return fmt.Errorf("hybrid run: %w", err)
	}
	hybFP, err := fingerprintQuery(db, heavyAggSQL)
	if err != nil {
		return fmt.Errorf("hybrid fingerprint: %w", err)
	}

	exec.HybridAggEnabled = false
	fw, _, _, err := spillFromExplain(db, heavyAggSQL)
	if err != nil {
		return fmt.Errorf("route-everything run: %w", err)
	}
	fullFP, err := fingerprintQuery(db, heavyAggSQL)
	if err != nil {
		return fmt.Errorf("route-everything fingerprint: %w", err)
	}

	rep.Hybrid.SpillBytesHybrid = hw
	rep.Hybrid.SpillBytesFull = fw
	rep.Hybrid.SpilledPartitions = hs
	rep.Hybrid.ResidentPartitions = hr
	rep.Hybrid.FingerprintOK = hybFP == baseFP && fullFP == baseFP
	if hw > 0 {
		rep.Hybrid.ReductionX = float64(fw) / float64(hw)
	} else if fw > 0 {
		rep.Hybrid.ReductionX = float64(fw) // hybrid wrote nothing at all
	}

	if !rep.Hybrid.FingerprintOK {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("hybrid results diverged: baseline %x, hybrid %x, route-everything %x", baseFP, hybFP, fullFP))
	}
	if fw == 0 {
		rep.Violations = append(rep.Violations,
			"route-everything never spilled: budget not constraining, experiment void")
	}
	if hw*2 > fw {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("hybrid spill %d B is not a 2x reduction over route-everything %d B", hw, fw))
	}
	if hr == 0 {
		rep.Violations = append(rep.Violations, "hybrid kept no partitions resident")
	}
	return nil
}

// leaseExperiment runs the mixed workload against a governed pool
// under one reclaim policy, sampling pool utilization while heavy
// aggregations and light scans churn on adaptiveClients connections.
func leaseExperiment(cfg config, rep *adaptiveReport, policy string) (policyResult, error) {
	res := policyResult{Policy: policy}
	dir, err := os.MkdirTemp("", "loadgen-adaptive-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	db, err := adaptiveDB(cfg, dir, vexdb.Options{
		Governor: &vexdb.GovernorConfig{
			PoolBytes:     adaptivePool,
			MaxActive:     adaptiveMaxActive,
			MaxQueued:     64,
			ReclaimPolicy: policy,
		},
	})
	if err != nil {
		return res, err
	}

	baseFP, err := fingerprintQuery(db, heavyAggSQL)
	if err != nil {
		return res, fmt.Errorf("%s baseline: %w", policy, err)
	}

	// Utilization sampler: runs until the workload goroutines finish.
	done := make(chan struct{})
	var sampleMu sync.Mutex
	var sampleSum float64
	var sampleN int64
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				u := db.GovernorStats().Utilization
				sampleMu.Lock()
				sampleSum += u
				sampleN++
				sampleMu.Unlock()
			}
		}
	}()

	var mu sync.Mutex
	var heavyLat []time.Duration
	var wg sync.WaitGroup
	errs := make(chan error, adaptiveClients)
	for c := 0; c < adaptiveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < cfg.requests; i++ {
				t0 := time.Now()
				fp, err := fingerprintQuery(db, heavyAggSQL)
				if err != nil {
					errs <- fmt.Errorf("%s client %d: %w", policy, c, err)
					return
				}
				d := time.Since(t0)
				mu.Lock()
				heavyLat = append(heavyLat, d)
				res.Queries++
				mu.Unlock()
				if fp != baseFP {
					errs <- fmt.Errorf("%s client %d: heavy fingerprint diverged", policy, c)
					return
				}
				if _, err := db.Query(lightScanSQL); err != nil {
					errs <- fmt.Errorf("%s client %d scan: %w", policy, c, err)
					return
				}
				mu.Lock()
				res.Queries++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(done)
	select {
	case err := <-errs:
		return res, err
	default:
	}

	st := db.GovernorStats()
	res.PeakUtilization = st.PeakUtilization
	res.Grows = st.Grows
	res.GrownBytes = st.GrownBytes
	res.Shrinks = st.Shrinks
	res.Reclaims = st.Reclaims
	sampleMu.Lock()
	if sampleN > 0 {
		res.MeanUtilization = sampleSum / float64(sampleN)
	}
	sampleMu.Unlock()

	sort.Slice(heavyLat, func(i, j int) bool { return heavyLat[i] < heavyLat[j] })
	pct := func(p float64) float64 {
		if len(heavyLat) == 0 {
			return 0
		}
		return float64(heavyLat[int(p*float64(len(heavyLat)-1))].Microseconds()) / 1000
	}
	res.HeavyP50MS = pct(0.50)
	res.HeavyP99MS = pct(0.99)
	res.HeavyMaxMS = pct(1.0)

	if st.LeasedBytes != 0 || st.Active != 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("%s: governor not drained: %d active, %d bytes leased", policy, st.Active, st.LeasedBytes))
	}
	if st.PeakLeasedBytes > adaptivePool {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("%s: peak leased %d exceeds pool %d", policy, st.PeakLeasedBytes, adaptivePool))
	}
	if policy == "static" && (st.Grows != 0 || st.Shrinks != 0) {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("static policy grew/shrunk leases: %d/%d", st.Grows, st.Shrinks))
	}
	return res, nil
}

// gateLeases asserts the adaptive-lease acceptance criteria once both
// policies have run: the fair policy must actually grow leases and
// lift pool utilization above the static fair-share ceiling.
func gateLeases(rep *adaptiveReport) {
	if len(rep.Leases) != 2 {
		return // an earlier error already aborted the run
	}
	static, fair := rep.Leases[0], rep.Leases[1]
	if fair.Grows == 0 {
		rep.Violations = append(rep.Violations, "fair policy never grew a lease")
	}
	if fair.PeakUtilization <= static.PeakUtilization {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("fair peak utilization %.3f not above static %.3f", fair.PeakUtilization, static.PeakUtilization))
	}
	if fair.MeanUtilization <= static.MeanUtilization {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("fair mean utilization %.3f not above static %.3f", fair.MeanUtilization, static.MeanUtilization))
	}
}
