// Command walbench measures the write path's group-commit win: it
// runs W concurrent sessions each INSERTing rows into one durable
// table and reports statements/second for 1 and 16 writers under each
// WAL sync policy — group (one fsync per commit batch), each (one
// fsync per statement, the serial baseline), and none (OS-buffered).
//
// The headline number is speedup_16w = group QPS / each QPS at 16
// writers: with per-statement fsync every writer pays a full disk
// flush in turn, while group commit batches all concurrently waiting
// statements into one. -assert N exits non-zero when the speedup
// falls below N (CI guards ≥3x).
//
// Usage:
//
//	walbench [-rows 400] [-out BENCH_wal.json] [-assert 3]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"vexdb"
)

type runResult struct {
	Writers  int     `json:"writers"`
	SyncMode string  `json:"sync_mode"`
	Rows     int     `json:"rows"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`
	// Fsyncs and AvgBatch expose the group-commit mechanics: how many
	// commit fsyncs the run issued and how many statements each made
	// durable on average.
	Fsyncs   int64   `json:"fsyncs"`
	AvgBatch float64 `json:"avg_batch"`
}

type report struct {
	Config struct {
		RowsPerRun int `json:"rows_per_run"`
	} `json:"config"`
	Runs []runResult `json:"runs"`
	// Speedup16W is group-commit QPS over per-statement-fsync QPS at
	// 16 concurrent writers — the group-commit batching win.
	Speedup16W float64 `json:"speedup_16w"`
	// Speedup1W is the same ratio with a single writer, where no
	// batching is possible; expected ~1x.
	Speedup1W float64 `json:"speedup_1w"`
}

func main() {
	rows := flag.Int("rows", 400, "INSERT statements per run (split across writers)")
	out := flag.String("out", "", "write the JSON report to this file (default: stdout only)")
	assert := flag.Float64("assert", 0, "exit non-zero when 16-writer group/each speedup is below this")
	flag.Parse()

	if err := run(*rows, *out, *assert); err != nil {
		fmt.Fprintln(os.Stderr, "walbench:", err)
		os.Exit(1)
	}
}

func run(rows int, out string, assert float64) error {
	scratch, err := os.MkdirTemp("", "walbench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)

	var rep report
	rep.Config.RowsPerRun = rows
	qps := map[string]float64{}

	modes := []struct {
		name string
		mode vexdb.SyncMode
	}{{"group", vexdb.SyncGroup}, {"each", vexdb.SyncEach}, {"none", vexdb.SyncNone}}
	for _, writers := range []int{1, 16} {
		for _, m := range modes {
			r, err := bench(filepath.Join(scratch, fmt.Sprintf("%s-%dw", m.name, writers)), writers, m.mode, rows)
			if err != nil {
				return err
			}
			r.SyncMode = m.name
			rep.Runs = append(rep.Runs, r)
			qps[fmt.Sprintf("%s-%d", m.name, writers)] = r.QPS
			fmt.Printf("%-6s %2d writers: %8.0f stmts/s (%d rows in %.3fs, %d fsyncs, avg batch %.1f)\n",
				m.name, writers, r.QPS, r.Rows, r.Seconds, r.Fsyncs, r.AvgBatch)
		}
	}
	rep.Speedup16W = qps["group-16"] / qps["each-16"]
	rep.Speedup1W = qps["group-1"] / qps["each-1"]
	fmt.Printf("group-commit speedup: %.1fx at 16 writers, %.1fx at 1 writer\n",
		rep.Speedup16W, rep.Speedup1W)

	if out != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if assert > 0 && rep.Speedup16W < assert {
		return fmt.Errorf("group-commit speedup %.2fx at 16 writers, below required %.2fx", rep.Speedup16W, assert)
	}
	return nil
}

// bench runs one configuration: writers goroutines sharing rows
// single-row INSERT statements against a fresh durable database.
func bench(dir string, writers int, mode vexdb.SyncMode, rows int) (runResult, error) {
	db, err := vexdb.OpenDurable(vexdb.Options{WALDir: dir, SyncMode: mode})
	if err != nil {
		return runResult{}, err
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE bench (w BIGINT, seq BIGINT)"); err != nil {
		return runResult{}, err
	}
	per := rows / writers
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO bench VALUES (%d, %d)", w, i)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return runResult{}, err
		}
	}
	total := per * writers
	if n := db.NumRows("bench"); n != total {
		return runResult{}, fmt.Errorf("%d writers committed %d rows, want %d", writers, n, total)
	}
	r := runResult{Writers: writers, Rows: total, Seconds: elapsed, QPS: float64(total) / elapsed}
	if syncs, commits := db.Engine().WALGroupStats(); syncs > 0 {
		r.Fsyncs = syncs
		r.AvgBatch = float64(commits) / float64(syncs)
	}
	return r, nil
}
