// Command csdb-server exposes a vexdb database over TCP using the
// wire protocols (columnar, binary rows, text rows), so external
// clients can play the socket-transfer baselines of Figure 1 against
// it. Results are streamed chunk by chunk straight from the executor
// (wire protocol v2): the server never materializes a result, and
// client disconnects or shutdown cancel in-flight queries.
//
// Concurrent load is governed process-wide: queries lease memory from
// a shared pool (-mem-pool) and worker slots from a shared budget
// (-worker-slots), excess queries wait in a bounded FIFO queue
// (-max-queue), and overload is rejected with a retryable wire error.
// With -wal-dir, writes are durable: each statement's WAL record is
// group-commit fsynced before the client sees its acknowledgement,
// and a restart replays the log. SIGTERM/SIGINT drain gracefully: the
// listener closes, in-flight queries finish within -drain-timeout,
// the WAL is checkpointed and sealed, then the process exits. A
// second signal aborts immediately.
//
// Usage:
//
//	csdb-server [-addr 127.0.0.1:5433] [-db DIR] [-wal-dir DIR] [-init script.sql]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vexdb"
	"vexdb/internal/cliutil"
	"vexdb/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "csdb-server:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:5433", "listen address")
	dbDir := flag.String("db", "", "database directory to serve")
	initFile := flag.String("init", "", "SQL script executed before serving")
	workers := flag.Int("workers", 0, "query execution parallelism (0 = all CPUs)")
	memBudget := flag.String("mem-budget", "0", "per-query memory budget for blocking operators, e.g. 64MB (0 = unlimited; over-budget queries spill to -temp-dir)")
	tempDir := flag.String("temp-dir", "", "spill directory for out-of-core execution (default: system temp dir)")
	memPool := flag.String("mem-pool", "0", "shared memory pool leased across concurrent queries, e.g. 1GB (0 = no pool)")
	maxActive := flag.Int("max-active", 0, "maximum concurrently executing queries (0 = 2x CPUs)")
	maxQueue := flag.Int("max-queue", 0, "admission queue capacity; excess queries are rejected with a retryable error (0 = default 64)")
	workerSlots := flag.Int("worker-slots", 0, "shared worker-goroutine budget across queries (0 = all CPUs)")
	sessionQueries := flag.Int("session-queries", 0, "per-connection concurrent query limit (0 = unlimited)")
	sessionMem := flag.String("session-mem", "0", "per-connection memory lease limit, e.g. 256MB (0 = unlimited)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline, admission wait included (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown window for in-flight queries")
	walDir := flag.String("wal-dir", "", "write-ahead log directory: writes become durable (group-commit fsync before ack) and crash recovery replays the log on start")
	syncMode := flag.String("sync", "group", "WAL fsync policy: group (one fsync per commit batch), each (per statement), none (OS-buffered)")
	reclaim := flag.String("reclaim", "fair", "memory-lease reclaim policy: fair (leases grow into idle pool bytes and shrink back to fair share under admission pressure), static (fixed fair-share leases, no grow/reclaim)")
	flag.Parse()

	budget, err := cliutil.ParseByteSize(*memBudget)
	if err != nil {
		return fmt.Errorf("-mem-budget: %w", err)
	}
	pool, err := cliutil.ParseByteSize(*memPool)
	if err != nil {
		return fmt.Errorf("-mem-pool: %w", err)
	}
	sessMem, err := cliutil.ParseByteSize(*sessionMem)
	if err != nil {
		return fmt.Errorf("-session-mem: %w", err)
	}
	mode, err := vexdb.ParseSyncMode(*syncMode)
	if err != nil {
		return fmt.Errorf("-sync: %w", err)
	}
	switch *reclaim {
	case "fair", "static":
	default:
		return fmt.Errorf("-reclaim: %q (want fair or static)", *reclaim)
	}
	opts := vexdb.Options{
		Parallelism:  *workers,
		MemoryBudget: budget,
		TempDir:      *tempDir,
		QueryTimeout: *queryTimeout,
		WALDir:       *walDir,
		SyncMode:     mode,
		Governor: &vexdb.GovernorConfig{
			PoolBytes:        pool,
			WorkerSlots:      *workerSlots,
			MaxActive:        *maxActive,
			MaxQueued:        *maxQueue,
			SessionMaxActive: *sessionQueries,
			SessionMaxMemory: sessMem,
			ReclaimPolicy:    *reclaim,
		},
	}
	var db *vexdb.DB
	switch {
	case *dbDir != "":
		db, err = vexdb.OpenDirOptions(*dbDir, opts)
		if err != nil {
			return err
		}
	case *walDir != "":
		db, err = vexdb.OpenDurable(opts)
		if err != nil {
			return err
		}
	default:
		db = vexdb.OpenOptions(opts)
	}
	if *initFile != "" {
		script, err := os.ReadFile(*initFile)
		if err != nil {
			return err
		}
		if _, err := db.ExecScript(string(script)); err != nil {
			return fmt.Errorf("-init %s: %w", *initFile, err)
		}
	}

	srv := wire.NewServer(db.Engine())
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("csdb-server listening on %s (tables: %v)\n", bound, db.TableNames())

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("shutting down (draining in-flight queries, up to %v; signal again to abort)\n", *drainTimeout)
	done := make(chan struct{})
	go func() {
		srv.Shutdown(*drainTimeout)
		close(done)
	}()
	select {
	case <-done:
	case <-sig:
		fmt.Println("aborting: cancelling in-flight queries")
		srv.Close()
		<-done
	}
	// Seal the WAL after the drain: in-flight writes have committed, so
	// a checkpoint leaves a truncated log and instant recovery.
	if *walDir != "" {
		if err := db.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "csdb-server: final checkpoint:", err)
		}
		if err := db.Close(); err != nil {
			return fmt.Errorf("wal close: %w", err)
		}
	}
	return nil
}
