// Command csdb-server exposes a vexdb database over TCP using the
// wire protocols (columnar, binary rows, text rows), so external
// clients can play the socket-transfer baselines of Figure 1 against
// it. Results are streamed chunk by chunk straight from the executor
// (wire protocol v2): the server never materializes a result, and
// client disconnects or shutdown cancel in-flight queries.
//
// Usage:
//
//	csdb-server [-addr 127.0.0.1:5433] [-db DIR] [-init script.sql]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"vexdb"
	"vexdb/internal/cliutil"
	"vexdb/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "listen address")
	dbDir := flag.String("db", "", "database directory to serve")
	initFile := flag.String("init", "", "SQL script executed before serving")
	workers := flag.Int("workers", 0, "query execution parallelism (0 = all CPUs)")
	memBudget := flag.String("mem-budget", "0", "per-query memory budget for blocking operators, e.g. 64MB (0 = unlimited; over-budget queries spill to -temp-dir)")
	tempDir := flag.String("temp-dir", "", "spill directory for out-of-core execution (default: system temp dir)")
	flag.Parse()

	budget, err := cliutil.ParseByteSize(*memBudget)
	if err != nil {
		fatal(fmt.Errorf("-mem-budget: %w", err))
	}
	var db *vexdb.DB
	if *dbDir != "" {
		opened, err := vexdb.OpenDirOptions(*dbDir, vexdb.Options{
			Parallelism: *workers, MemoryBudget: budget, TempDir: *tempDir})
		if err != nil {
			fatal(err)
		}
		db = opened
	} else {
		db = vexdb.OpenOptions(vexdb.Options{
			Parallelism: *workers, MemoryBudget: budget, TempDir: *tempDir})
	}
	if *initFile != "" {
		script, err := os.ReadFile(*initFile)
		if err != nil {
			fatal(err)
		}
		if _, err := db.ExecScript(string(script)); err != nil {
			fatal(err)
		}
	}

	srv := wire.NewServer(db.Engine())
	bound, err := srv.Start(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("csdb-server listening on %s (tables: %v)\n", bound, db.TableNames())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csdb-server:", err)
	os.Exit(1)
}
