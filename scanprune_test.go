package vexdb

import (
	"fmt"
	"testing"
)

// loadSortedEvents bulk-loads n rows clustered on id (sorted), the
// shape zone-map pruning is designed for.
func loadSortedEvents(tb testing.TB, db *DB, n int) {
	tb.Helper()
	ids := make([]int64, n)
	grps := make([]int64, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		grps[i] = int64(i / 10_000)
		vals[i] = float64(i%1000) / 10
	}
	tab, err := NewTable([]string{"id", "grp", "val"}, []*Vector{
		NewVectorInt64(ids), NewVectorInt64(grps), NewVectorFloat64(vals)})
	if err != nil {
		tb.Fatal(err)
	}
	if err := db.CreateTableFrom("events", tab); err != nil {
		tb.Fatal(err)
	}
}

// CI smoke: a selective filter over 200k rows of sorted data must
// skip at least 80% of the segments and still return the right rows.
func TestScanPruningSmoke(t *testing.T) {
	const rows = 200_000
	db := Open()
	loadSortedEvents(t, db, rows)

	st, err := db.TableStats("events")
	if err != nil {
		t.Fatal(err)
	}
	if st.SealedSegments == 0 {
		t.Fatal("no sealed segments")
	}
	if st.CompressedBytes >= st.LogicalBytes {
		t.Fatalf("no compression: %d vs %d bytes", st.CompressedBytes, st.LogicalBytes)
	}

	r, err := db.QueryStream("SELECT count(*) AS n, min(id) AS mn FROM events WHERE id >= 195000")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Next() {
		t.Fatalf("no result row: %v", r.Err())
	}
	if n := r.Value(0).Int64(); n != 5000 {
		t.Fatalf("count = %d, want 5000", n)
	}
	if mn := r.Value(1).Int64(); mn != 195000 {
		t.Fatalf("min = %d", mn)
	}
	scanned, skipped := r.ScanStats()
	if skipped == 0 {
		t.Fatal("selective scan skipped 0 segments")
	}
	total := scanned + skipped
	if float64(skipped) < 0.8*float64(total) {
		t.Fatalf("skipped %d of %d segments, want >= 80%%", skipped, total)
	}
}

// benchSelective runs one selective aggregate over sorted data; with
// zone maps it touches ~3% of the segments.
func benchSelective(b *testing.B, rows int) {
	db := Open()
	loadSortedEvents(b, db, rows)
	q := "SELECT count(*) AS n, sum(val) AS s FROM events WHERE id >= 195000"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Column("n").Get(0).Int64() != int64(rows-195_000) {
			b.Fatal("wrong count")
		}
	}
	b.StopTimer()
	st, err := db.TableStats("events")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(st.SegmentsSkipped)/float64(b.N), "segs-skipped/op")
}

func BenchmarkSelectiveScanPruned(b *testing.B) { benchSelective(b, 200_000) }

// BenchmarkFullScanCompressed measures the non-selective decode path
// (every segment decoded each run), the worst case for compressed
// segments.
func BenchmarkFullScanCompressed(b *testing.B) {
	db := Open()
	loadSortedEvents(b, db, 200_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query("SELECT count(*) AS n, sum(val) AS s FROM events")
		if err != nil {
			b.Fatal(err)
		}
		if res.Column("n").Get(0).Int64() != 200_000 {
			b.Fatal("wrong count")
		}
	}
}

// BenchmarkMicroSortParallel: 200k-row ORDER BY through run generation
// + loser-tree merge. workers=1 is the serial sortOp baseline; on a
// multi-core machine workers=8 shows the run-sort fan-out, on a
// 1-core CI box it must at least hold parity.
func BenchmarkMicroSortParallel(b *testing.B) {
	db := Open()
	loadSortedEvents(b, db, 200_000)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			db.SetParallelism(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab, err := db.Query("SELECT id FROM events ORDER BY val, id")
				if err != nil {
					b.Fatal(err)
				}
				if tab.NumRows() != 200_000 {
					b.Fatal("short sort output")
				}
			}
		})
	}
}

// BenchmarkMicroSortLimitParallel: the LIMIT bound pushed into the
// merge means only 100 rows are ever popped off the loser tree.
func BenchmarkMicroSortLimitParallel(b *testing.B) {
	db := Open()
	loadSortedEvents(b, db, 200_000)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			db.SetParallelism(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab, err := db.Query("SELECT id FROM events ORDER BY val DESC, id LIMIT 100")
				if err != nil {
					b.Fatal(err)
				}
				if tab.NumRows() != 100 {
					b.Fatal("short sort output")
				}
			}
		})
	}
}

// BenchmarkMicroDistinctAggParallel: DISTINCT aggregation over
// per-worker key sets unioned at the merge (serial before this
// existed).
func BenchmarkMicroDistinctAggParallel(b *testing.B) {
	db := Open()
	loadSortedEvents(b, db, 200_000)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			db.SetParallelism(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab, err := db.Query("SELECT grp, count(DISTINCT val) AS n FROM events GROUP BY grp")
				if err != nil {
					b.Fatal(err)
				}
				if tab.NumRows() != 20 {
					b.Fatalf("groups = %d", tab.NumRows())
				}
			}
		})
	}
}

// Tables returned by NextTable must own their columns: the serial
// prefetching scan recycles decode buffers, so retaining earlier
// tables across iterations must not see them overwritten.
func TestNextTableRetainsDataAcrossIteration(t *testing.T) {
	db := Open()
	db.SetParallelism(1) // serial scan path (the one that recycles)
	loadSortedEvents(t, db, 20_000)
	r, err := db.QueryStream("SELECT id FROM events")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var tables []*Table
	for {
		tab, err := r.NextTable()
		if err != nil {
			t.Fatal(err)
		}
		if tab == nil {
			break
		}
		tables = append(tables, tab)
	}
	var next int64
	for ti, tab := range tables {
		for _, x := range tab.Cols[0].Int64s() {
			if x != next {
				t.Fatalf("table %d: row value %d, want %d (buffer overwritten?)", ti, x, next)
			}
			next++
		}
	}
	if next != 20_000 {
		t.Fatalf("iterated %d rows", next)
	}
}
