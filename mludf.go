package vexdb

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"vexdb/internal/core"
	"vexdb/internal/vector"
	"vexdb/ml"
)

// registerMLFunctions installs the machine-learning UDF suite, the Go
// analog of the paper's Listing 1 (training) and Listing 2
// (classification):
//
//	train_rf(rel, n_estimators, max_depth, seed) -> (model, algo, ...)
//	train_tree(rel, max_depth)                   -> (model, algo, ...)
//	train_logreg(rel, iterations)                -> (model, algo, ...)
//	train_nb(rel)                                -> (model, algo, ...)
//	predict(model, f0, f1, ...)            -> INTEGER
//	predict_confidence(model, f0, f1, ...) -> DOUBLE
//	weighted_label(id, w0, w1, seed)       -> INTEGER
//
// Training relations use the convention of the paper's train(data,
// classes) UDF generalized to many features: every column except the
// last is a numeric feature, the last column is the integer class
// label. The trainers are parallel blocking operators: they fit
// per-worker partials (contiguous tree ranges for the forest,
// per-morsel sufficient statistics for naive Bayes, per-morsel
// gradient partials for logistic regression) under the query's
// parallelism setting and merge them deterministically, so trained
// models are byte-identical at any worker count.
//
// Every predict variant goes through the per-database model cache —
// the paper's §5.1 future work ("the database system could be
// extended to directly store snapshots of the in-memory
// representation of the models to avoid this (de)serialization
// overhead") is the default, not an opt-in: a pointer-identity fast
// path plus a SHA-256-verified digest map hand each chunk the already
// deserialized classifier, and scoring runs through ml's batch
// predictors (no per-row boxing). predict_cached remains registered
// as a deprecated alias of predict for backward compatibility.
func registerMLFunctions(db *DB) {
	cache := newModelCache()
	db.modelCache = cache
	mustRegisterTable := func(f *TableFunc) {
		if err := db.RegisterTable(f); err != nil {
			panic(err)
		}
	}
	mustRegisterScalar := func(f *ScalarFunc) {
		if err := db.RegisterScalar(f); err != nil {
			panic(err)
		}
	}

	trainColumns := []ColumnDecl{
		{Name: "model", Type: Blob},
		{Name: "algo", Type: String},
		{Name: "n_features", Type: Int64},
		{Name: "trained_rows", Type: Int64},
	}

	trainResult := func(clf ml.Classifier, rows, feats int) (*Table, error) {
		blob, err := ml.Marshal(clf)
		if err != nil {
			return nil, err
		}
		return vector.NewTable(
			[]string{"model", "algo", "n_features", "trained_rows"},
			[]*Vector{
				vector.FromBlobs([][]byte{blob}),
				vector.FromStrings([]string{clf.Name()}),
				vector.FromInt64s([]int64{int64(feats)}),
				vector.FromInt64s([]int64{int64(rows)}),
			})
	}

	// Each trainer's FnPar receives the executing query's worker count
	// (workers <= 0 lets the fit choose); the serial Fn entry point
	// defers to the same implementation, so both paths produce
	// byte-identical models.
	trainRF := func(args []TableArg, workers int) (*Table, error) {
		X, y, err := trainingData("train_rf", args, 3)
		if err != nil {
			return nil, err
		}
		f := ml.NewRandomForest(int(scalarInt(args, 1, 16)))
		f.MaxDepth = int(scalarInt(args, 2, 12))
		f.Seed = scalarInt(args, 3, 1)
		if err := f.FitWorkers(X, y, workers); err != nil {
			return nil, err
		}
		return trainResult(f, len(y), len(X))
	}
	mustRegisterTable(&TableFunc{
		Name:    "train_rf",
		Columns: trainColumns,
		Fn:      func(args []TableArg) (*Table, error) { return trainRF(args, 0) },
		FnPar:   trainRF,
	})

	mustRegisterTable(&TableFunc{
		Name:    "train_tree",
		Columns: trainColumns,
		Fn: func(args []TableArg) (*Table, error) {
			X, y, err := trainingData("train_tree", args, 1)
			if err != nil {
				return nil, err
			}
			t := ml.NewDecisionTree()
			t.MaxDepth = int(scalarInt(args, 1, 12))
			if err := t.Fit(X, y); err != nil {
				return nil, err
			}
			return trainResult(t, len(y), len(X))
		},
	})

	trainLogreg := func(args []TableArg, workers int) (*Table, error) {
		X, y, err := trainingData("train_logreg", args, 1)
		if err != nil {
			return nil, err
		}
		m := ml.NewLogisticRegression()
		m.Iterations = int(scalarInt(args, 1, 200))
		if err := m.FitParallel(X, y, workers); err != nil {
			return nil, err
		}
		return trainResult(m, len(y), len(X))
	}
	mustRegisterTable(&TableFunc{
		Name:    "train_logreg",
		Columns: trainColumns,
		Fn:      func(args []TableArg) (*Table, error) { return trainLogreg(args, 0) },
		FnPar:   trainLogreg,
	})

	trainNB := func(args []TableArg, workers int) (*Table, error) {
		X, y, err := trainingData("train_nb", args, 0)
		if err != nil {
			return nil, err
		}
		m := ml.NewGaussianNB()
		if err := m.FitParallel(X, y, workers); err != nil {
			return nil, err
		}
		return trainResult(m, len(y), len(X))
	}
	mustRegisterTable(&TableFunc{
		Name:    "train_nb",
		Columns: trainColumns,
		Fn:      func(args []TableArg) (*Table, error) { return trainNB(args, 0) },
		FnPar:   trainNB,
	})

	// evalPredictLabels scores feature columns against the cached model
	// through ml's batch predictors: the cache hands back the already
	// deserialized classifier (pointer-identity fast path per chunk) and
	// PredictLabelsInto writes straight into the result column — no
	// per-call Unmarshal, no per-row feature boxing.
	evalPredictLabels := func(fn string) func(args []*Vector) (*Vector, error) {
		return func(args []*Vector) (*Vector, error) {
			clf, X, err := predictInputsCached(fn, args, cache)
			if err != nil {
				return nil, err
			}
			out := make([]int32, len(X[0]))
			if err := ml.PredictLabelsInto(clf, X, out); err != nil {
				return nil, err
			}
			return vector.FromInt32s(out), nil
		}
	}

	mustRegisterScalar(&ScalarFunc{
		Name:       "predict",
		Arity:      -1,
		Parallel:   true,
		ReturnType: core.FixedReturn(Int32),
		Eval:       evalPredictLabels("predict"),
	})

	mustRegisterScalar(&ScalarFunc{
		Name:       "predict_confidence",
		Arity:      -1,
		Parallel:   true,
		ReturnType: core.FixedReturn(Float64),
		Eval: func(args []*Vector) (*Vector, error) {
			clf, X, err := predictInputsCached("predict_confidence", args, cache)
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(X[0]))
			if err := ml.PredictConfidenceInto(clf, X, out); err != nil {
				return nil, err
			}
			return vector.FromFloat64s(out), nil
		},
	})

	// Deprecated: predict_cached is an alias of predict, kept for
	// queries written before the cache became the default path.
	mustRegisterScalar(&ScalarFunc{
		Name:       "predict_cached",
		Arity:      -1,
		Parallel:   true,
		ReturnType: core.FixedReturn(Int32),
		Eval:       evalPredictLabels("predict_cached"),
	})

	// weighted_label(id, w0, w1, seed) draws class 0 with probability
	// w0/(w0+w1) using a per-row hash of (id, seed): the paper's
	// weighted-random "true" label generation, made deterministic and
	// partition-safe.
	mustRegisterScalar(&ScalarFunc{
		Name:       "weighted_label",
		Arity:      4,
		Parallel:   true,
		ReturnType: core.FixedReturn(Int32),
		Eval: func(args []*Vector) (*Vector, error) {
			ids, err := args[0].AsFloat64s()
			if err != nil {
				return nil, fmt.Errorf("weighted_label: %w", err)
			}
			w0, err := args[1].AsFloat64s()
			if err != nil {
				return nil, fmt.Errorf("weighted_label: %w", err)
			}
			w1, err := args[2].AsFloat64s()
			if err != nil {
				return nil, fmt.Errorf("weighted_label: %w", err)
			}
			seeds, err := args[3].AsFloat64s()
			if err != nil {
				return nil, fmt.Errorf("weighted_label: %w", err)
			}
			out := make([]int32, len(ids))
			for i := range out {
				u := hashUnit(uint64(ids[i]), uint64(seeds[i]))
				total := w0[i] + w1[i]
				p0 := 0.5
				if total > 0 {
					p0 = w0[i] / total
				}
				if u < p0 {
					out[i] = 0
				} else {
					out[i] = 1
				}
			}
			return vector.FromInt32s(out), nil
		},
	})
}

// hashUnit maps (id, seed) to a uniform float in [0, 1) via
// splitmix64.
func hashUnit(id, seed uint64) float64 {
	x := id*0x9E3779B97F4A7C15 + seed + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// trainingData extracts column-major features and labels from a table
// UDF's first (relation) argument: all columns but the last are
// features, the last is the class label. maxParams bounds the trailing
// scalar parameters accepted.
func trainingData(fn string, args []TableArg, maxParams int) ([][]float64, []int, error) {
	if len(args) < 1 || !args[0].IsTable() {
		return nil, nil, fmt.Errorf("%s: first argument must be a relation (subquery)", fn)
	}
	if len(args) > 1+maxParams {
		return nil, nil, fmt.Errorf("%s: at most %d scalar parameters, got %d", fn, maxParams, len(args)-1)
	}
	rel := args[0].Table
	if rel.NumCols() < 2 {
		return nil, nil, fmt.Errorf("%s: relation needs at least one feature column and a label column", fn)
	}
	nf := rel.NumCols() - 1
	X := make([][]float64, nf)
	for i := 0; i < nf; i++ {
		col, err := rel.Cols[i].AsFloat64s()
		if err != nil {
			return nil, nil, fmt.Errorf("%s: feature column %q: %w", fn, rel.Names[i], err)
		}
		X[i] = col
	}
	labelCol, err := rel.Cols[nf].AsInt32s()
	if err != nil {
		return nil, nil, fmt.Errorf("%s: label column %q: %w", fn, rel.Names[nf], err)
	}
	y := make([]int, len(labelCol))
	for i, l := range labelCol {
		y[i] = int(l)
	}
	return X, y, nil
}

// scalarInt reads the idx-th argument as an integer, with a default
// when absent or NULL.
func scalarInt(args []TableArg, idx int, def int64) int64 {
	if idx >= len(args) || args[idx].IsTable() || args[idx].Scalar.IsNull() {
		return def
	}
	return args[idx].Scalar.Int64()
}

// modelCache memoizes deserialized models keyed by a 64-bit FNV hash
// of the blob. The hash is an index, not an identity: each entry
// carries the blob's SHA-256 digest and a hit verifies it, so an FNV
// collision falls through to ml.Unmarshal instead of silently serving
// the wrong classifier to PREDICT (the digest costs 32 bytes per
// entry versus retaining multi-megabyte model blobs). The cache is
// bounded to a fixed entry count with single-entry eviction, so
// filling it does not drop every hot model at once.
//
// In front of the digest map sits a small MRU pointer-identity ring:
// engine blobs are immutable once stored, so (&blob[0], len)
// identifies the exact bytes without touching them. Streaming PREDICT
// consults the cache once per chunk, where hashing a multi-megabyte
// model blob per 2048-row chunk would rival the scoring cost itself;
// the identity hit is O(1). A blob copy (different backing array,
// same bytes) misses the ring and falls through to the verified
// digest path, so identity is an accelerator, never an identity
// *assumption*.
type modelCache struct {
	mu      sync.Mutex
	entries map[modelKey]*modelEntry
	ident   [identSlots]identEntry
}

// identSlots bounds the pointer-identity ring; queries rarely score
// against more than a couple of live models at once.
const identSlots = 4

// identEntry caches one deserialized model by blob identity.
type identEntry struct {
	ptr  *byte
	size int
	clf  ml.Classifier
}

type modelKey struct {
	hash uint64
	size int
}

// modelEntry pairs the deserialized classifier with the digest of the
// exact bytes it was deserialized from.
type modelEntry struct {
	digest [sha256.Size]byte
	clf    ml.Classifier
}

const modelCacheMaxEntries = 64

func newModelCache() *modelCache {
	return &modelCache{entries: make(map[modelKey]*modelEntry)}
}

func (c *modelCache) get(blob []byte) (ml.Classifier, error) {
	if len(blob) > 0 {
		p := &blob[0]
		c.mu.Lock()
		for i := range c.ident {
			e := c.ident[i]
			if e.ptr == p && e.size == len(blob) {
				if i != 0 {
					copy(c.ident[1:i+1], c.ident[0:i])
					c.ident[0] = e
				}
				c.mu.Unlock()
				return e.clf, nil
			}
		}
		c.mu.Unlock()
	}
	key := modelKey{hash: fnv64a(blob), size: len(blob)}
	digest := sha256.Sum256(blob)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok && e.digest == digest {
		c.noteIdentLocked(blob, e.clf)
		c.mu.Unlock()
		return e.clf, nil
	}
	c.mu.Unlock()
	clf, err := ml.Unmarshal(blob)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, ok := c.entries[key]; !ok && len(c.entries) >= modelCacheMaxEntries {
		// Evict one arbitrary entry (Go map iteration order). A
		// colliding key replaces its entry in place instead —
		// latest-deserialized wins the slot.
		for k := range c.entries {
			delete(c.entries, k)
			break
		}
	}
	c.entries[key] = &modelEntry{digest: digest, clf: clf}
	c.noteIdentLocked(blob, clf)
	c.mu.Unlock()
	return clf, nil
}

// noteIdentLocked records the blob identity at the ring's MRU slot.
// Callers hold c.mu.
func (c *modelCache) noteIdentLocked(blob []byte, clf ml.Classifier) {
	if len(blob) == 0 {
		return
	}
	copy(c.ident[1:], c.ident[:len(c.ident)-1])
	c.ident[0] = identEntry{ptr: &blob[0], size: len(blob), clf: clf}
}

func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// predictInputsCached resolves the model from the first argument's
// blob (constant across rows) through the §5.1 snapshot cache and
// converts the remaining arguments to column-major features — the
// body of the paper's Listing 2, minus the per-call deserialization.
func predictInputsCached(fn string, args []*Vector, cache *modelCache) (ml.Classifier, [][]float64, error) {
	if len(args) < 2 {
		return nil, nil, fmt.Errorf("%s: requires (model, feature...) arguments", fn)
	}
	if args[0].Type() != Blob {
		return nil, nil, fmt.Errorf("%s: first argument must be a model BLOB, got %s", fn, args[0].Type())
	}
	if args[0].Len() == 0 {
		return nil, nil, fmt.Errorf("%s: empty input", fn)
	}
	if args[0].IsNull(0) {
		return nil, nil, fmt.Errorf("%s: model is NULL", fn)
	}
	clf, err := cache.get(args[0].Blobs()[0])
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", fn, err)
	}
	X := make([][]float64, len(args)-1)
	for i, a := range args[1:] {
		col, err := a.AsFloat64s()
		if err != nil {
			return nil, nil, fmt.Errorf("%s: feature %d: %w", fn, i, err)
		}
		X[i] = col
	}
	return clf, X, nil
}
