module vexdb

go 1.24
